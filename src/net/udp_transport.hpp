// UdpTransport: the live implementation of the Transport interface — one
// non-blocking loopback UDP socket per process, driven by a poll() event
// loop that maps the protocol's Scheduler timers onto the wall clock.
//
// This is what takes EvsNode off the simulator: the identical protocol
// state machine runs unmodified, but packets cross the kernel's UDP stack
// (real loss under load, real reordering, real syscall latency) and timers
// fire in wall-clock microseconds. Design points:
//
//   * One socket, one process. Peers are registered as 127.0.0.1:port; a
//     "broadcast" is a sendto() to every registered peer *including the
//     sender's own port* — the loopback self-delivery the protocol expects
//     from broadcast hardware arrives through the same socket as everything
//     else, so it is subject to the same loss and queueing.
//   * Batched, non-blocking syscalls. Outbound datagrams coalesce into a
//     sendmmsg() batch (flushed every loop iteration, or held up to
//     Options::batch_flush_us); the receive path drains the socket with
//     recvmmsg() into per-datagram arena buffers (net/arena.hpp) that the
//     zero-copy decode path pins. EAGAIN/EWOULDBLOCK parks datagrams in a
//     bounded backlog flushed on POLLOUT; when the backlog is full the
//     datagram is dropped and counted (net.dropped_backpressure) — exactly
//     the loss the retransmission and recovery machinery already absorbs.
//     `backpressured()` exposes the saturated state so harnesses can
//     surface it through the Errc::backpressure path.
//   * Clock mapping. The transport owns a Scheduler whose virtual time is
//     microseconds since open(); each loop iteration advances it to the
//     wall clock, firing due timers, and the poll() timeout is bounded by
//     Scheduler::next_time(). Protocol code calls schedule_after() exactly
//     as in sim.
//   * Port-level drop filters. block_peer()/unblock_peer() discard
//     datagrams from/to a peer inside the transport (counted as
//     net.dropped_filter), emulating an iptables DROP rule without needing
//     privileges — this is how testkit::LiveCluster scripts the Fig. 6
//     partition over real sockets.
//   * Single-threaded affinity. Everything except post() and the stats
//     snapshot must run on the thread that calls run()/poll_once(); post()
//     is the thread-safe door into the loop (it wakes poll() via a
//     self-pipe) through which harnesses inject sends and filter changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace evs {

class UdpTransport final : public Transport {
 public:
  struct Options {
    std::uint16_t port{0};  ///< bind port on 127.0.0.1; 0 = ephemeral
    /// Largest datagram accepted for send/receive. Protocol frames are
    /// bounded far below typical loopback MTUs.
    std::size_t max_datagram_bytes{60u * 1024};
    /// Datagrams parked after EAGAIN before further sends are dropped.
    std::size_t send_backlog_datagrams{256};
    /// Receive datagrams drained per loop iteration before timers get a
    /// chance to run again (keeps a flooded socket from starving timers).
    int max_recv_per_poll{64};
    /// Send coalescing window: outbound datagrams queue for up to this many
    /// microseconds (or until a sendmmsg batch fills) before the syscall
    /// fires. 0 = flush every loop iteration — batching then comes only from
    /// sends generated within one iteration (a token visit's fan-out), which
    /// keeps latency untouched. Raise it to trade latency for fewer
    /// syscalls under sparse load.
    std::uint32_t batch_flush_us{0};
    /// SO_RCVBUF / SO_SNDBUF request, 0 = leave the kernel default. Tests
    /// shrink these to force EAGAIN backpressure deterministically.
    int so_rcvbuf{0};
    int so_sndbuf{0};
    /// CLOCK_MONOTONIC reading (ns) to use as virtual time zero; 0 = stamp
    /// at open(). Co-located transports (LiveCluster) pass one shared
    /// reading so every member's trace timestamps sit on the same time
    /// base — the spec checker compares send/delivery times across
    /// processes, and per-open epochs would skew them by the start stagger.
    std::int64_t epoch_ns{0};
  };

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t datagrams_received{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t bytes_received{0};
    std::uint64_t eagain_deferrals{0};      ///< sends parked on EAGAIN
    std::uint64_t dropped_backpressure{0};  ///< sends dropped, backlog full
    std::uint64_t dropped_filter{0};        ///< drop-filtered (both directions)
    std::uint64_t dropped_unknown_peer{0};  ///< datagram from an unregistered port
    std::uint64_t dropped_detached{0};      ///< received while no endpoint attached
    std::uint64_t send_errors{0};           ///< sendto() failed hard (not EAGAIN)
  };

  explicit UdpTransport(Options options);
  UdpTransport() : UdpTransport(Options{}) {}
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Create and bind the socket (idempotent failure: a transport that fails
  /// to open stays closed). Errc::storage_io carries the errno detail —
  /// the harnesses treat it as "sockets unavailable, skip live tests".
  Status open();
  bool is_open() const { return fd_ >= 0; }
  /// The bound port (valid after open()).
  std::uint16_t port() const { return port_; }

  /// Register peer `p` at 127.0.0.1:port. Registering self is what enables
  /// broadcast loopback. Re-registering updates the port.
  void add_peer(ProcessId p, std::uint16_t port);

  // --- partition scripting (port-level drop filters) ---
  void block_peer(ProcessId p);
  void unblock_peer(ProcessId p);
  bool peer_blocked(ProcessId p) const { return blocked_.count(p) > 0; }

  // Transport:
  void attach(ProcessId p, Endpoint* endpoint) override;
  void detach(ProcessId p) override;
  bool attached(ProcessId p) const override;
  void broadcast(ProcessId from, std::vector<std::uint8_t> payload) override;
  void unicast(ProcessId from, ProcessId to,
               std::vector<std::uint8_t> payload) override;
  Scheduler& scheduler() override { return scheduler_; }

  // --- event loop ---
  /// One iteration: run posted tasks, advance the clock and fire due
  /// timers, poll the socket for at most `max_wait_us` (clamped to the next
  /// timer), flush the send backlog, dispatch received datagrams. Returns
  /// the number of datagrams dispatched.
  int poll_once(SimTime max_wait_us);

  /// Loop until stop() is called (from any thread).
  void run();
  void stop();

  /// Thread-safe: enqueue `fn` to run on the loop thread at the next
  /// iteration and wake the loop if it is parked in poll().
  void post(std::function<void()> fn);

  /// Microseconds of wall clock since the epoch (open() or the shared
  /// Options::epoch_ns) — the live now().
  SimTime wall_now_us() const;

  /// Current CLOCK_MONOTONIC in nanoseconds — the reading harnesses take
  /// once and fan out through Options::epoch_ns.
  static std::int64_t monotonic_now_ns();

  /// True while the send backlog is at capacity: the kernel pushed back
  /// faster than the loop can flush. Harnesses surface this through the
  /// protocol's Errc::backpressure path.
  bool backpressured() const {
    return backpressured_.load(std::memory_order_relaxed);
  }

  /// Thread-safe snapshot (loop thread publishes with relaxed atomics).
  Stats stats() const;

  /// The transport's "net.*" instruments, mirroring the sim Network's
  /// registry shape where the concepts coincide. Only safe to read from the
  /// loop thread (or after the loop stopped); LiveCluster snapshots it via
  /// post().
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Outbound datagram: the payload is shared, so a broadcast's N queue
  /// entries reference one buffer instead of carrying N copies.
  struct PendingDatagram {
    std::uint16_t to_port;
    net::DatagramRef payload;
  };

  void close_fd();
  void flush_backlog();
  /// Queue one datagram for the next sendmmsg flush; `to_port` is a
  /// registered peer's port. EAGAIN at flush time parks it in backlog_.
  void send_datagram(std::uint16_t to_port, net::DatagramRef payload);
  /// sendmmsg() the out-batch. When `force` is false and batch_flush_us is
  /// set, a batch younger than the window (and below the syscall batch
  /// size) is left to coalesce.
  void flush_out_batch(bool force);
  void park_or_drop(PendingDatagram d);
  void drain_socket(int budget);
  void advance_clock();
  void drain_posted();
  void note_backpressure();

  Options options_;
  Scheduler scheduler_;
  int fd_{-1};
  int wake_fd_{-1};       ///< eventfd the poster writes to wake poll()
  std::uint16_t port_{0};
  std::int64_t epoch_ns_{0};  ///< CLOCK_MONOTONIC at open()

  std::unordered_map<ProcessId, std::uint16_t> peer_port_;
  std::unordered_map<std::uint16_t, ProcessId> port_peer_;
  std::unordered_set<ProcessId> blocked_;
  std::unordered_map<ProcessId, Endpoint*> endpoints_;

  std::deque<PendingDatagram> backlog_;   ///< parked on EAGAIN, FIFO
  std::vector<PendingDatagram> out_batch_;  ///< coalescing for sendmmsg
  SimTime out_batch_deadline_us_{0};        ///< flush-by time (batch_flush_us)
  std::atomic<bool> backpressured_{false};
  std::atomic<bool> stop_{false};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  /// Receive buffers come from here: one ref-counted buffer per datagram
  /// (recvmmsg fills a batch of them), recycled when the last message view
  /// into the datagram is released.
  std::shared_ptr<net::DatagramArena> arena_{net::DatagramArena::create()};

  // Counters are written by the loop thread only; stats() reads them from
  // other threads, so each is an atomic with relaxed ordering (they are
  // monitoring data, not synchronization).
  struct AtomicStats {
    std::atomic<std::uint64_t> datagrams_sent{0};
    std::atomic<std::uint64_t> datagrams_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> eagain_deferrals{0};
    std::atomic<std::uint64_t> dropped_backpressure{0};
    std::atomic<std::uint64_t> dropped_filter{0};
    std::atomic<std::uint64_t> dropped_unknown_peer{0};
    std::atomic<std::uint64_t> dropped_detached{0};
    std::atomic<std::uint64_t> send_errors{0};
  };
  AtomicStats stats_;

  /// Cached instrument handles (same pattern as Network::Met).
  struct Met {
    obs::Counter& broadcasts;
    obs::Counter& unicasts;
    obs::Counter& deliveries;
    obs::Counter& bytes_delivered;
    obs::Counter& dropped_filter;
    obs::Counter& dropped_backpressure;
    obs::Counter& eagain_deferrals;
    obs::Histogram& packet_bytes;
    explicit Met(obs::MetricsRegistry& r);
  };
  obs::MetricsRegistry metrics_;
  Met met_{metrics_};
};

}  // namespace evs
