// UdpTransport: the live implementation of the Transport interface — one
// non-blocking UDP socket per process, driven by an event loop that maps the
// protocol's Scheduler timers onto the wall clock.
//
// This is what takes EvsNode off the simulator: the identical protocol
// state machine runs unmodified, but packets cross the kernel's UDP stack
// (real loss under load, real reordering, real syscall latency) and timers
// fire in wall-clock microseconds. Design points:
//
//   * One socket, one process. Peers are registered by address
//     (PeerAddr = {ip, port}; the loopback-port overload of add_peer keeps
//     the single-machine harness path terse), so a ring can span processes
//     and hosts, not just ports on 127.0.0.1. A "broadcast" is by default a
//     sendto() to every registered peer *including the sender itself* — the
//     loopback self-delivery the protocol expects from broadcast hardware
//     arrives through the same socket as everything else, so it is subject
//     to the same loss and queueing. Options can instead wire a real
//     multicast group (IP_ADD_MEMBERSHIP + IP_MULTICAST_{IF,TTL,LOOP}) or a
//     broadcast address (SO_BROADCAST): then a broadcast is ONE datagram to
//     the group, and self-delivery comes from the kernel's multicast loop.
//   * Batched, non-blocking syscalls. Outbound datagrams coalesce into a
//     sendmmsg() batch (flushed every loop iteration, or held up to
//     Options::batch_flush_us); the receive path drains the socket with
//     recvmmsg() into per-datagram arena buffers (net/arena.hpp) that the
//     zero-copy decode path pins. EAGAIN/EWOULDBLOCK parks datagrams in a
//     bounded backlog flushed on POLLOUT; when the backlog is full the
//     datagram is dropped and counted (net.dropped_backpressure) — exactly
//     the loss the retransmission and recovery machinery already absorbs.
//     `backpressured()` exposes the saturated state so harnesses can
//     surface it through the Errc::backpressure path.
//   * Clock mapping. The transport owns a Scheduler whose virtual time is
//     microseconds since open(); every service pass advances it to the
//     wall clock, firing due timers, and the poll timeout is bounded by
//     Scheduler::next_time(). Protocol code calls schedule_after() exactly
//     as in sim.
//   * Drop filters. block_peer()/unblock_peer() discard datagrams from/to a
//     peer (by ProcessId, or by PeerAddr for sources that never resolved to
//     a pid) inside the transport, counted as net.dropped_filter — an
//     iptables DROP rule without privileges; this is how
//     testkit::LiveCluster scripts the Fig. 6 partition over real sockets.
//   * Single-consumer affinity, externally drivable. Everything except
//     post() and the stats snapshot must run on whichever thread currently
//     drives the loop. The transport can drive itself (run()/poll_once()),
//     or an Executor (net/executor.hpp) can multiplex many transports onto
//     one worker by composing the exposed pieces: fd() + wants_pollout()
//     for its pollfd set, next_deadline_us() to merge this transport's
//     timers into the worker's ppoll deadline, and service() for the
//     non-blocking work pass. service() bounds its socket drain by
//     Options::max_recv_per_poll per call, which is the fairness contract
//     that keeps one flooded node from starving a co-scheduled neighbor's
//     timers (see tests/executor/).
//   * post() is the thread-safe door into the loop: a lock-free MPSC inbox
//     (net/inbox.hpp) plus a wake of whoever is parked in poll — the
//     transport's own eventfd, or the owning worker via set_waker(). Once
//     the loop has finished (run() returned, or Executor::stop() completed)
//     the inbox is closed and post() returns false instead of stranding
//     the closure — the fail-fast half of the lifecycle-race fix.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/inbox.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace evs {

/// A peer's socket address: dotted-quad IPv4 + UDP port. The live analogue
/// of a ProcessId — add_peer() binds the two together.
struct PeerAddr {
  std::string ip{"127.0.0.1"};
  std::uint16_t port{0};

  bool operator==(const PeerAddr& other) const {
    return ip == other.ip && port == other.port;
  }
};

class UdpTransport final : public Transport {
 public:
  struct Options {
    /// Local address to bind. Multicast mode overrides this with INADDR_ANY
    /// (required to receive group traffic on Linux).
    std::string bind_ip{"127.0.0.1"};
    std::uint16_t port{0};  ///< bind port; 0 = ephemeral
    /// Largest datagram accepted for send/receive. Protocol frames are
    /// bounded far below typical loopback MTUs.
    std::size_t max_datagram_bytes{60u * 1024};
    /// Datagrams parked after EAGAIN before further sends are dropped.
    std::size_t send_backlog_datagrams{256};
    /// Receive datagrams dispatched per service pass before control returns
    /// to the caller. This is both the anti-starvation bound for a flooded
    /// socket's own timers and the per-node fairness budget when an
    /// Executor worker multiplexes several transports: a neighbor's heavy
    /// delivery consumes at most this many dispatches before every other
    /// node on the worker gets its timers advanced again.
    int max_recv_per_poll{64};
    /// Send coalescing window: outbound datagrams queue for up to this many
    /// microseconds (or until a sendmmsg batch fills) before the syscall
    /// fires. 0 = flush every service pass — batching then comes only from
    /// sends generated within one pass (a token visit's fan-out), which
    /// keeps latency untouched. Raise it to trade latency for fewer
    /// syscalls under sparse load.
    std::uint32_t batch_flush_us{0};
    /// SO_RCVBUF / SO_SNDBUF request, 0 = leave the kernel default. Tests
    /// shrink these to force EAGAIN backpressure deterministically.
    int so_rcvbuf{0};
    int so_sndbuf{0};
    /// CLOCK_MONOTONIC reading (ns) to use as virtual time zero; 0 = stamp
    /// at open(). Co-located transports (LiveCluster) pass one shared
    /// reading so every member's trace timestamps sit on the same time
    /// base — the spec checker compares send/delivery times across
    /// processes, and per-open epochs would skew them by the start stagger.
    std::int64_t epoch_ns{0};

    // --- group-send wiring (real multicast / broadcast sockets) ---
    /// When non-empty (e.g. "239.255.42.1"): open() joins the group on
    /// `multicast_if`, wires IP_MULTICAST_{IF,TTL,LOOP}, and broadcast()
    /// sends ONE datagram to group:multicast_port instead of fanning out
    /// per peer. Every ring member must bind the same port on its own host
    /// and join the same group; self-delivery then comes from
    /// IP_MULTICAST_LOOP instead of self-registration. Per-peer *outbound*
    /// drop filters cannot apply to a single group datagram — partition
    /// scripting over group sends relies on the inbound filters both sides
    /// install.
    std::string multicast_group{};
    /// Destination port for group sends; 0 = this socket's own bound port
    /// (the symmetric-ring case).
    std::uint16_t multicast_port{0};
    std::string multicast_if{"127.0.0.1"};
    int multicast_ttl{1};
    bool multicast_loop{true};
    /// SO_BROADCAST wiring: when true, broadcast() sends one datagram to
    /// broadcast_addr:multicast_port (same port rule as multicast). For
    /// subnet-broadcast LANs; mutually exclusive with multicast_group.
    bool enable_broadcast{false};
    std::string broadcast_addr{"255.255.255.255"};
  };

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t datagrams_received{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t bytes_received{0};
    std::uint64_t eagain_deferrals{0};      ///< sends parked on EAGAIN
    std::uint64_t dropped_backpressure{0};  ///< sends dropped, backlog full
    std::uint64_t dropped_filter{0};        ///< drop-filtered (both directions)
    std::uint64_t dropped_unknown_peer{0};  ///< datagram from an unregistered address
    std::uint64_t dropped_detached{0};      ///< received while no endpoint attached
    std::uint64_t send_errors{0};           ///< sendto() failed hard (not EAGAIN)
    std::uint64_t posts_rejected{0};        ///< post() after the loop finished
  };

  explicit UdpTransport(Options options);
  UdpTransport() : UdpTransport(Options{}) {}
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Create and bind the socket (idempotent failure: a transport that fails
  /// to open stays closed). Errc::transport_io carries the errno detail —
  /// the harnesses treat it as "sockets unavailable, skip live tests".
  Status open();
  bool is_open() const { return fd_ >= 0; }
  /// The bound port (valid after open()).
  std::uint16_t port() const { return port_; }
  /// The bound address (valid after open()): Options::bind_ip + port().
  PeerAddr local_addr() const { return PeerAddr{options_.bind_ip, port_}; }

  /// Register peer `p` at `addr`. Re-registering the same peer updates its
  /// address (its drop filter, if any, survives the move — a restarted node
  /// that rebinds an ephemeral port stays behind an existing partition
  /// filter). Registering a SECOND peer at an address already held by a
  /// different peer is an explicit Errc::invalid_argument error, not a
  /// silent overwrite: aliasing two ProcessIds onto one source address
  /// would let the aliased peer's datagrams resolve to the other pid and
  /// walk through its block filter. Errors leave the peer table unchanged.
  Status add_peer(ProcessId p, const PeerAddr& addr);
  /// Loopback convenience: peer at 127.0.0.1:port. Registering self is what
  /// enables broadcast loopback in per-peer fan-out mode.
  Status add_peer(ProcessId p, std::uint16_t port) {
    return add_peer(p, PeerAddr{"127.0.0.1", port});
  }

  // --- partition scripting (drop filters, both directions) ---
  void block_peer(ProcessId p);
  void unblock_peer(ProcessId p);
  bool peer_blocked(ProcessId p) const { return blocked_.count(p) > 0; }
  /// Address-form filters, for sources that never resolved to a ProcessId
  /// (or to pre-block an address before its peer registers). Invalid
  /// addresses are rejected.
  Status block_peer(const PeerAddr& addr);
  Status unblock_peer(const PeerAddr& addr);

  // Transport:
  void attach(ProcessId p, Endpoint* endpoint) override;
  void detach(ProcessId p) override;
  bool attached(ProcessId p) const override;
  void broadcast(ProcessId from, std::vector<std::uint8_t> payload) override;
  void unicast(ProcessId from, ProcessId to,
               std::vector<std::uint8_t> payload) override;
  Scheduler& scheduler() override { return scheduler_; }

  // --- event loop (self-driven mode) ---
  /// One iteration: service the transport, park in ppoll for at most
  /// `max_wait_us` (clamped to the next timer / batch deadline), service
  /// again. Returns the number of datagrams dispatched.
  int poll_once(SimTime max_wait_us);

  /// Loop until stop() is called (from any thread). On exit the posting
  /// door closes: queued closures run (a stop posted together with work
  /// does not strand it), later post() calls return false.
  void run();
  void stop();

  // --- event loop (executor-driven mode; see net/executor.hpp) ---
  /// The socket fd to poll for POLLIN (and POLLOUT while wants_pollout()).
  int fd() const { return fd_; }
  bool wants_pollout() const { return !backlog_.empty(); }
  /// Absolute time (in this transport's wall_now_us() base) by which the
  /// driver must service this transport again: the earliest of the next
  /// scheduler timer, the coalescing-batch flush deadline, and "now" while
  /// a backlog waits for POLLOUT. nullopt = nothing time-bounded pending.
  std::optional<SimTime> next_deadline_us();
  /// Non-blocking work pass: posted closures, clock advance + due timers,
  /// backlog flush, bounded socket drain (Options::max_recv_per_poll),
  /// batch flush. Returns the number of datagrams dispatched. Must only be
  /// called by the single driving thread.
  int service();
  /// Replace the post() wake mechanism: instead of writing this transport's
  /// own eventfd, call `waker` (the executor points it at the owning
  /// worker's eventfd). Set before the loop starts; not thread-safe against
  /// a running loop.
  void set_waker(std::function<void()> waker) { waker_ = std::move(waker); }
  /// Close the posting door and run what was already accepted, then flush
  /// the out-batch — the loop's final act. run() does this itself; an
  /// Executor calls it for each member after its workers joined. Idempotent.
  void finish();

  /// Thread-safe: enqueue `fn` to run on the driving thread at the next
  /// service pass and wake the loop if it is parked. Returns false — and
  /// does NOT enqueue — once the loop has finished; the caller must handle
  /// the task itself (LiveCluster::call runs it inline, which is safe
  /// exactly because a finished loop can no longer touch the node).
  [[nodiscard]] bool post(std::function<void()> fn);

  /// Approximate depth of the post() inbox (monitoring; the executor's
  /// inbox-depth histogram).
  std::size_t inbox_depth() const { return inbox_.depth(); }

  /// Microseconds of wall clock since the epoch (open() or the shared
  /// Options::epoch_ns) — the live now().
  SimTime wall_now_us() const;

  /// Current CLOCK_MONOTONIC in nanoseconds — the reading harnesses take
  /// once and fan out through Options::epoch_ns.
  static std::int64_t monotonic_now_ns();

  /// True while the send backlog is at capacity: the kernel pushed back
  /// faster than the loop can flush. Harnesses surface this through the
  /// protocol's Errc::backpressure path.
  bool backpressured() const {
    return backpressured_.load(std::memory_order_relaxed);
  }

  /// Thread-safe snapshot (loop thread publishes with relaxed atomics).
  Stats stats() const;

  /// The transport's "net.*" instruments, mirroring the sim Network's
  /// registry shape where the concepts coincide. Only safe to read from the
  /// driving thread (or after the loop stopped); LiveCluster snapshots it
  /// via post().
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Outbound datagram: the payload is shared, so a broadcast's N queue
  /// entries reference one buffer instead of carrying N copies.
  struct PendingDatagram {
    sockaddr_in to;
    net::DatagramRef payload;
  };

  /// (ip, port) packed into one map key: host-order ip in the high 32 bits.
  static std::uint64_t addr_key(const sockaddr_in& addr);

  void close_fd();
  Status wire_group_send_options();
  void flush_backlog();
  /// Queue one datagram for the next sendmmsg flush. EAGAIN at flush time
  /// parks it in backlog_.
  void send_datagram(const sockaddr_in& to, net::DatagramRef payload);
  /// sendmmsg() the out-batch. When `force` is false and batch_flush_us is
  /// set, a batch younger than the window (and below the syscall batch
  /// size) is left to coalesce.
  void flush_out_batch(bool force);
  void park_or_drop(PendingDatagram d);
  void drain_socket(int budget);
  void advance_clock();
  void drain_posted();
  void wake();
  void note_backpressure();

  Options options_;
  Scheduler scheduler_;
  int fd_{-1};
  int wake_fd_{-1};       ///< eventfd the poster writes to wake poll()
  std::uint16_t port_{0};
  std::int64_t epoch_ns_{0};  ///< CLOCK_MONOTONIC at open()

  struct Peer {
    sockaddr_in addr;
    std::uint64_t key;
  };
  std::unordered_map<ProcessId, Peer> peers_;
  std::unordered_map<std::uint64_t, ProcessId> addr_peer_;
  std::unordered_set<ProcessId> blocked_;
  std::unordered_set<std::uint64_t> blocked_addrs_;
  std::unordered_map<ProcessId, Endpoint*> endpoints_;
  /// Group-send destination when multicast/broadcast mode is wired.
  std::optional<sockaddr_in> group_dst_;

  std::deque<PendingDatagram> backlog_;   ///< parked on EAGAIN, FIFO
  std::vector<PendingDatagram> out_batch_;  ///< coalescing for sendmmsg
  SimTime out_batch_deadline_us_{0};        ///< flush-by time (batch_flush_us)
  std::atomic<bool> backpressured_{false};
  std::atomic<bool> stop_{false};

  net::TaskInbox inbox_;
  std::function<void()> waker_;

  /// Receive buffers come from here: one ref-counted buffer per datagram
  /// (recvmmsg fills a batch of them), recycled when the last message view
  /// into the datagram is released.
  std::shared_ptr<net::DatagramArena> arena_{net::DatagramArena::create()};

  // Counters are written by the driving thread only; stats() reads them
  // from other threads, so each is an atomic with relaxed ordering (they
  // are monitoring data, not synchronization).
  struct AtomicStats {
    std::atomic<std::uint64_t> datagrams_sent{0};
    std::atomic<std::uint64_t> datagrams_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> eagain_deferrals{0};
    std::atomic<std::uint64_t> dropped_backpressure{0};
    std::atomic<std::uint64_t> dropped_filter{0};
    std::atomic<std::uint64_t> dropped_unknown_peer{0};
    std::atomic<std::uint64_t> dropped_detached{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> posts_rejected{0};
  };
  AtomicStats stats_;

  /// Cached instrument handles (same pattern as Network::Met).
  struct Met {
    obs::Counter& broadcasts;
    obs::Counter& unicasts;
    obs::Counter& deliveries;
    obs::Counter& bytes_delivered;
    obs::Counter& dropped_filter;
    obs::Counter& dropped_backpressure;
    obs::Counter& eagain_deferrals;
    obs::Histogram& packet_bytes;
    explicit Met(obs::MetricsRegistry& r);
  };
  obs::MetricsRegistry metrics_;
  Met met_{metrics_};
};

}  // namespace evs
