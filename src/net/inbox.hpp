// TaskInbox: the lock-free MPSC door into an event loop.
//
// This replaces the mutex-guarded posted-closure vector UdpTransport carried
// through the thread-per-node era. Any number of producer threads push
// closures; exactly one consumer (the loop, or the executor worker that owns
// the loop) drains them in FIFO order. The structure is a Treiber stack with
// a consumer-side reversal: a push is one CAS on the head pointer, a drain is
// one CAS plus a pointer-reversal walk — no mutex on either side, so a
// harness thread posting into a hot worker never blocks it (and vice versa).
//
// Close semantics are the lifecycle-race fix (ISSUE 10): the head pointer
// doubles as the open/closed state via a sentinel value. close() atomically
// swaps the sentinel in and returns the tasks that were already accepted —
// the closer runs them, honoring the "a stop posted together with work does
// not strand it" contract — and every later push() fails fast with `false`
// instead of stranding a closure that a joined thread will never run. That
// is what lets LiveCluster::call() fall back to running inline instead of
// deadlocking on a promise nobody will fulfill.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace evs::net {

class TaskInbox {
 public:
  using Task = std::function<void()>;

  TaskInbox() = default;
  ~TaskInbox();

  TaskInbox(const TaskInbox&) = delete;
  TaskInbox& operator=(const TaskInbox&) = delete;

  /// Thread-safe, lock-free. Returns false (and drops `task`) once the inbox
  /// is closed — the producer must fall back to a path that cannot race the
  /// dead consumer.
  bool push(Task task);

  /// Consumer only: run every task accepted so far, oldest first. Returns
  /// the number of tasks run. A closed inbox drains as empty.
  std::size_t drain(const std::function<void(Task&&)>& run);

  /// Consumer only (or the thread that joined the consumer): atomically
  /// close the inbox against future pushes, then run what was already
  /// accepted, oldest first. Idempotent. Returns the number of tasks run.
  std::size_t close(const std::function<void(Task&&)>& run);

  bool closed() const;

  /// Approximate number of accepted-but-not-yet-run tasks. Monitoring only
  /// (the executor's inbox-depth histogram); racy by nature.
  std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Task fn;
    Node* next{nullptr};
  };

  /// Sentinel head value meaning "closed". A distinct static object so it
  /// can never alias a real allocation.
  static Node* closed_sentinel();

  /// Detach the current chain for consumption (leaves the inbox open).
  /// Returns the raw LIFO chain, nullptr when empty or closed.
  Node* take_chain();
  /// Reverse `chain` to FIFO order, run each task, delete the nodes.
  std::size_t run_chain(Node* chain, const std::function<void(Task&&)>& run);

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> depth_{0};
};

}  // namespace evs::net
