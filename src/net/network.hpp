// Simulated broadcast network with partitions, merges, loss and delay.
//
// This is the substitute for the LAN broadcast hardware of the Totem and
// Transis testbeds (see DESIGN.md §2). The network is a set of *components*:
// processes in the same component hear each other's broadcasts; processes in
// different components cannot communicate at all, which is exactly the
// partition model of Section 2 of the paper. In-flight packets are cut when
// a partition separates sender and receiver before delivery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace evs {

class Network final : public Transport {
 public:
  struct Options {
    SimTime min_delay_us{50};
    SimTime max_delay_us{200};
    double loss_probability{0.0};  // per receiver, independent
  };

  /// Snapshot of the network's metrics (the registry is the source of
  /// truth; this struct is assembled on demand for ergonomic field access).
  struct Stats {
    std::uint64_t broadcasts{0};
    std::uint64_t unicasts{0};
    std::uint64_t deliveries{0};
    std::uint64_t dropped_loss{0};
    std::uint64_t dropped_partition{0};
    std::uint64_t dropped_detached{0};
    std::uint64_t dropped_fault{0};  ///< dropped by the fault injector
    std::uint64_t duplicated_fault{0};  ///< extra copies the injector added
    std::uint64_t bytes_delivered{0};
  };

  Network(Scheduler& scheduler, Rng rng) : Network(scheduler, rng, Options{}) {}
  Network(Scheduler& scheduler, Rng rng, Options options);

  /// Attach a process endpoint. A freshly attached process joins the
  /// component it was last assigned to (component 0 by default).
  void attach(ProcessId p, Endpoint* endpoint) override;

  /// Detach (e.g. crashed) — queued and future packets to p are dropped.
  void detach(ProcessId p) override;

  bool attached(ProcessId p) const override;

  /// Send to every process currently in the sender's component (including
  /// the sender itself: broadcast hardware loops back).
  void broadcast(ProcessId from, std::vector<std::uint8_t> payload) override;

  void unicast(ProcessId from, ProcessId to,
               std::vector<std::uint8_t> payload) override;

  /// Partition the network into the given components. Every attached
  /// process not listed ends up isolated in its own singleton component.
  void set_components(const std::vector<std::vector<ProcessId>>& components);

  /// Heal the network: everything into one component.
  void merge_all();

  bool connected(ProcessId a, ProcessId b) const;

  /// Processes currently in the same component as p (including p).
  std::vector<ProcessId> component_of(ProcessId p) const;

  Stats stats() const;
  /// The network's metrics ("net.*" counters plus the "net.packet_bytes"
  /// delivery-size histogram). Aggregated into cluster snapshots.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const Options& options() const { return options_; }
  void set_loss_probability(double p) { options_.loss_probability = p; }

  // --- adversarial fault injection (see sim/faults.hpp) ---
  /// Install a fault plan. Packets scheduled from now on pass through a
  /// FaultInjector seeded from plan.seed (or, when 0, from the network's
  /// own deterministic stream). An empty plan clears injection.
  void set_fault_plan(FaultPlan plan);
  void clear_faults() { retire_injector(); }
  const FaultInjector* faults() const { return injector_.get(); }
  /// Mutable injector access for the stable-storage write path: each
  /// StableStore's fault hook routes record appends through
  /// FaultInjector::apply_storage so disk and network faults share one
  /// deterministic seeded stream. nullptr when no plan is installed.
  FaultInjector* faults_mutable() { return injector_.get(); }
  /// Cumulative injector stats, including injectors already cleared or
  /// replaced — tests clear faults to quiesce and then inspect what ran.
  FaultStats fault_stats() const {
    FaultStats total = retired_fault_stats_;
    if (injector_) total += injector_->stats();
    return total;
  }

  Scheduler& scheduler() override { return scheduler_; }

 private:
  /// Cached instrument handles: one add on the hot path, no name lookups.
  struct Met {
    obs::Counter& broadcasts;
    obs::Counter& unicasts;
    obs::Counter& deliveries;
    obs::Counter& dropped_loss;
    obs::Counter& dropped_partition;
    obs::Counter& dropped_detached;
    obs::Counter& dropped_fault;
    obs::Counter& duplicated_fault;
    obs::Counter& bytes_delivered;
    obs::Histogram& packet_bytes;
    explicit Met(obs::MetricsRegistry& r);
  };

  void deliver_later(ProcessId from, ProcessId to, const Packet& packet);
  void schedule_delivery(ProcessId from, ProcessId to, Packet packet, SimTime delay);
  SimTime draw_delay();
  void retire_injector();

  Scheduler& scheduler_;
  Rng rng_;
  Options options_;
  obs::MetricsRegistry metrics_;
  Met met_{metrics_};
  std::unique_ptr<FaultInjector> injector_;
  FaultStats retired_fault_stats_;  // folded in from cleared injectors
  std::unordered_map<ProcessId, Endpoint*> endpoints_;
  std::unordered_map<ProcessId, std::uint32_t> component_;  // p -> component id
  std::uint32_t next_component_id_{1};
};

}  // namespace evs
