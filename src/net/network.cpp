#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

Network::Met::Met(obs::MetricsRegistry& r)
    : broadcasts(r.counter("net.broadcasts")),
      unicasts(r.counter("net.unicasts")),
      deliveries(r.counter("net.deliveries")),
      dropped_loss(r.counter("net.dropped_loss")),
      dropped_partition(r.counter("net.dropped_partition")),
      dropped_detached(r.counter("net.dropped_detached")),
      dropped_fault(r.counter("net.dropped_fault")),
      duplicated_fault(r.counter("net.duplicated_fault")),
      bytes_delivered(r.counter("net.bytes_delivered")),
      packet_bytes(r.histogram("net.packet_bytes")) {}

Network::Stats Network::stats() const {
  Stats s;
  s.broadcasts = met_.broadcasts.value();
  s.unicasts = met_.unicasts.value();
  s.deliveries = met_.deliveries.value();
  s.dropped_loss = met_.dropped_loss.value();
  s.dropped_partition = met_.dropped_partition.value();
  s.dropped_detached = met_.dropped_detached.value();
  s.dropped_fault = met_.dropped_fault.value();
  s.duplicated_fault = met_.duplicated_fault.value();
  s.bytes_delivered = met_.bytes_delivered.value();
  return s;
}

Network::Network(Scheduler& scheduler, Rng rng, Options options)
    : scheduler_(scheduler), rng_(rng), options_(options) {
  EVS_ASSERT(options_.min_delay_us <= options_.max_delay_us);
}

void Network::attach(ProcessId p, Endpoint* endpoint) {
  EVS_ASSERT(endpoint != nullptr);
  endpoints_[p] = endpoint;
  component_.try_emplace(p, 0);
}

void Network::detach(ProcessId p) { endpoints_.erase(p); }

bool Network::attached(ProcessId p) const { return endpoints_.count(p) > 0; }

SimTime Network::draw_delay() {
  if (options_.min_delay_us == options_.max_delay_us) return options_.min_delay_us;
  return options_.min_delay_us +
         rng_.below(options_.max_delay_us - options_.min_delay_us + 1);
}

void Network::retire_injector() {
  if (injector_) {
    retired_fault_stats_ += injector_->stats();
    injector_.reset();
  }
}

void Network::set_fault_plan(FaultPlan plan) {
  retire_injector();
  if (plan.empty()) {
    return;
  }
  const Rng rng = plan.seed != 0 ? Rng(plan.seed) : rng_.split();
  injector_ = std::make_unique<FaultInjector>(std::move(plan), rng);
}

void Network::schedule_delivery(ProcessId from, ProcessId to, Packet packet,
                                SimTime delay) {
  scheduler_.schedule_after(delay, [this, from, to, packet = std::move(packet)]() {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      met_.dropped_detached.inc();
      return;
    }
    // The partition may have changed while the packet was in flight; a
    // partition severs in-flight traffic.
    if (!connected(from, to)) {
      met_.dropped_partition.inc();
      return;
    }
    met_.deliveries.inc();
    met_.bytes_delivered.inc(packet.payload().size());
    met_.packet_bytes.record(packet.payload().size());
    it->second->on_packet(packet);
  });
}

void Network::deliver_later(ProcessId from, ProcessId to, const Packet& packet) {
  if (!attached(to)) {
    met_.dropped_detached.inc();
    return;
  }
  if (!connected(from, to)) {
    met_.dropped_partition.inc();
    return;
  }
  // Loopback is lossless: a process always observes its own broadcast.
  if (to != from && options_.loss_probability > 0.0 &&
      rng_.chance(options_.loss_probability)) {
    met_.dropped_loss.inc();
    return;
  }
  const SimTime delay = to == from ? options_.min_delay_us : draw_delay();
  // Loopback is also exempt from fault injection: the LAN hardware loopback
  // the paper's testbeds rely on never traverses the wire.
  if (injector_ != nullptr && to != from) {
    // The injector mutates bytes in place, but `packet.data` is shared with
    // every other receiver of this broadcast — copy-on-write so one
    // receiver's corruption cannot leak into the others' deliveries.
    Packet copy = packet;
    std::vector<std::uint8_t> mutated(packet.payload().begin(),
                                      packet.payload().end());
    const FaultInjector::Action action =
        injector_->apply(from, to, scheduler_.now(), mutated);
    if (action.drop) {
      met_.dropped_fault.inc();
      return;
    }
    copy.data = net::make_datagram(std::move(mutated));
    for (const SimTime extra : action.duplicate_extra_delays) {
      met_.duplicated_fault.inc();
      schedule_delivery(from, to, copy, draw_delay() + extra);
    }
    schedule_delivery(from, to, std::move(copy), delay + action.extra_delay_us);
    return;
  }
  schedule_delivery(from, to, packet, delay);
}

void Network::broadcast(ProcessId from, std::vector<std::uint8_t> payload) {
  met_.broadcasts.inc();
  // One shared buffer for every receiver: the per-receiver Packet copies
  // below duplicate a refcount, not the datagram bytes.
  Packet packet{from, ProcessId{}, true, net::make_datagram(std::move(payload))};
  // Deterministic receiver order: ascending process id.
  std::vector<ProcessId> receivers;
  receivers.reserve(endpoints_.size());
  for (const auto& [p, ep] : endpoints_) receivers.push_back(p);
  std::sort(receivers.begin(), receivers.end());
  for (ProcessId to : receivers) {
    Packet copy = packet;
    copy.dst = to;
    deliver_later(from, to, copy);
  }
}

void Network::unicast(ProcessId from, ProcessId to, std::vector<std::uint8_t> payload) {
  met_.unicasts.inc();
  Packet packet{from, to, false, net::make_datagram(std::move(payload))};
  deliver_later(from, to, packet);
}

void Network::set_components(const std::vector<std::vector<ProcessId>>& components) {
  std::unordered_map<ProcessId, std::uint32_t> assigned;
  for (const auto& group : components) {
    const std::uint32_t id = next_component_id_++;
    for (ProcessId p : group) {
      EVS_ASSERT_MSG(assigned.count(p) == 0, "process listed in two components");
      assigned[p] = id;
    }
  }
  // Anything previously known but unlisted becomes isolated.
  for (auto& [p, comp] : component_) {
    auto it = assigned.find(p);
    comp = it != assigned.end() ? it->second : next_component_id_++;
  }
  for (const auto& [p, id] : assigned) component_[p] = id;
}

void Network::merge_all() {
  const std::uint32_t id = next_component_id_++;
  for (auto& [p, comp] : component_) comp = id;
}

bool Network::connected(ProcessId a, ProcessId b) const {
  if (a == b) return true;
  auto ia = component_.find(a);
  auto ib = component_.find(b);
  if (ia == component_.end() || ib == component_.end()) return false;
  return ia->second == ib->second;
}

std::vector<ProcessId> Network::component_of(ProcessId p) const {
  std::vector<ProcessId> out;
  auto it = component_.find(p);
  if (it == component_.end()) return out;
  for (const auto& [q, comp] : component_) {
    if (comp == it->second && attached(q)) out.push_back(q);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace evs
