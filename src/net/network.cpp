#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

Network::Network(Scheduler& scheduler, Rng rng, Options options)
    : scheduler_(scheduler), rng_(rng), options_(options) {
  EVS_ASSERT(options_.min_delay_us <= options_.max_delay_us);
}

void Network::attach(ProcessId p, Endpoint* endpoint) {
  EVS_ASSERT(endpoint != nullptr);
  endpoints_[p] = endpoint;
  component_.try_emplace(p, 0);
}

void Network::detach(ProcessId p) { endpoints_.erase(p); }

bool Network::attached(ProcessId p) const { return endpoints_.count(p) > 0; }

SimTime Network::draw_delay() {
  if (options_.min_delay_us == options_.max_delay_us) return options_.min_delay_us;
  return options_.min_delay_us +
         rng_.below(options_.max_delay_us - options_.min_delay_us + 1);
}

void Network::retire_injector() {
  if (injector_) {
    retired_fault_stats_ += injector_->stats();
    injector_.reset();
  }
}

void Network::set_fault_plan(FaultPlan plan) {
  retire_injector();
  if (plan.empty()) {
    return;
  }
  const Rng rng = plan.seed != 0 ? Rng(plan.seed) : rng_.split();
  injector_ = std::make_unique<FaultInjector>(std::move(plan), rng);
}

void Network::schedule_delivery(ProcessId from, ProcessId to, Packet packet,
                                SimTime delay) {
  scheduler_.schedule_after(delay, [this, from, to, packet = std::move(packet)]() {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    // The partition may have changed while the packet was in flight; a
    // partition severs in-flight traffic.
    if (!connected(from, to)) {
      ++stats_.dropped_partition;
      return;
    }
    ++stats_.deliveries;
    stats_.bytes_delivered += packet.payload.size();
    it->second->on_packet(packet);
  });
}

void Network::deliver_later(ProcessId from, ProcessId to, const Packet& packet) {
  if (!attached(to)) {
    ++stats_.dropped_detached;
    return;
  }
  if (!connected(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  // Loopback is lossless: a process always observes its own broadcast.
  if (to != from && options_.loss_probability > 0.0 &&
      rng_.chance(options_.loss_probability)) {
    ++stats_.dropped_loss;
    return;
  }
  const SimTime delay = to == from ? options_.min_delay_us : draw_delay();
  // Loopback is also exempt from fault injection: the LAN hardware loopback
  // the paper's testbeds rely on never traverses the wire.
  if (injector_ != nullptr && to != from) {
    Packet copy = packet;
    const FaultInjector::Action action =
        injector_->apply(from, to, scheduler_.now(), copy.payload);
    if (action.drop) {
      ++stats_.dropped_fault;
      return;
    }
    for (const SimTime extra : action.duplicate_extra_delays) {
      ++stats_.duplicated_fault;
      schedule_delivery(from, to, copy, draw_delay() + extra);
    }
    schedule_delivery(from, to, std::move(copy), delay + action.extra_delay_us);
    return;
  }
  schedule_delivery(from, to, packet, delay);
}

void Network::broadcast(ProcessId from, std::vector<std::uint8_t> payload) {
  ++stats_.broadcasts;
  Packet packet{from, ProcessId{}, true, std::move(payload)};
  // Deterministic receiver order: ascending process id.
  std::vector<ProcessId> receivers;
  receivers.reserve(endpoints_.size());
  for (const auto& [p, ep] : endpoints_) receivers.push_back(p);
  std::sort(receivers.begin(), receivers.end());
  for (ProcessId to : receivers) {
    Packet copy = packet;
    copy.dst = to;
    deliver_later(from, to, copy);
  }
}

void Network::unicast(ProcessId from, ProcessId to, std::vector<std::uint8_t> payload) {
  ++stats_.unicasts;
  Packet packet{from, to, false, std::move(payload)};
  deliver_later(from, to, packet);
}

void Network::set_components(const std::vector<std::vector<ProcessId>>& components) {
  std::unordered_map<ProcessId, std::uint32_t> assigned;
  for (const auto& group : components) {
    const std::uint32_t id = next_component_id_++;
    for (ProcessId p : group) {
      EVS_ASSERT_MSG(assigned.count(p) == 0, "process listed in two components");
      assigned[p] = id;
    }
  }
  // Anything previously known but unlisted becomes isolated.
  for (auto& [p, comp] : component_) {
    auto it = assigned.find(p);
    comp = it != assigned.end() ? it->second : next_component_id_++;
  }
  for (const auto& [p, id] : assigned) component_[p] = id;
}

void Network::merge_all() {
  const std::uint32_t id = next_component_id_++;
  for (auto& [p, comp] : component_) comp = id;
}

bool Network::connected(ProcessId a, ProcessId b) const {
  if (a == b) return true;
  auto ia = component_.find(a);
  auto ib = component_.find(b);
  if (ia == component_.end() || ib == component_.end()) return false;
  return ia->second == ib->second;
}

std::vector<ProcessId> Network::component_of(ProcessId p) const {
  std::vector<ProcessId> out;
  auto it = component_.find(p);
  if (it == component_.end()) return out;
  for (const auto& [q, comp] : component_) {
    if (comp == it->second && attached(q)) out.push_back(q);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace evs
