// Ref-counted datagram buffers: the ownership anchor of the zero-copy path.
//
// A datagram is received (or built for send) once, wrapped in a DatagramRef,
// and from then on only the refcount moves: the sim Network hands the same
// buffer to every broadcast receiver, the codec decodes RegularMsgView
// payloads as spans into it, OrderingCore stores those views, and the
// deliver callback sees them — no byte is copied anywhere along the way.
// The buffer is freed (or recycled) when the last view, store slot or
// in-flight packet holding the ref goes away, which is exactly the lifetime
// rule documented in DESIGN.md "Zero-copy ownership model": a view can never
// outlive its datagram because holding the view IS holding the datagram.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace evs::net {

/// Shared immutable datagram bytes. Convertible to the type-erased
/// evs::BufferRef a RegularMsgView carries.
using DatagramRef = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Wrap bytes in a one-off DatagramRef (no pooling). The cheap default for
/// the sim network and for send-side buffers.
inline DatagramRef make_datagram(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Recycling pool for receive buffers on the live UDP hot path, where a
/// datagram is allocated per recvmmsg slot and freed a few microseconds
/// later once its frames are decoded, stored and delivered. Buffers returned
/// by make() come back to the freelist when their last ref drops (keeping
/// their capacity, so steady state allocates nothing); if the arena itself
/// is gone by then they are simply freed. Thread-safe: the last ref can drop
/// on a different thread than the event loop that acquired the buffer.
class DatagramArena : public std::enable_shared_from_this<DatagramArena> {
 public:
  static std::shared_ptr<DatagramArena> create(std::size_t max_pooled = 64) {
    return std::shared_ptr<DatagramArena>(new DatagramArena(max_pooled));
  }

  /// Wrap `bytes` in a ref whose deleter recycles the buffer here.
  DatagramRef make(std::vector<std::uint8_t> bytes);

  /// A buffer resized to `size` (recycled storage when available, so steady
  /// state does not allocate; contents unspecified). Used as recvmmsg
  /// staging: fill it, shrink to the received length, then hand it back
  /// through make().
  std::vector<std::uint8_t> acquire(std::size_t size);

  /// Return an acquire()d buffer that ended up unused.
  void recycle(std::vector<std::uint8_t> buf);

  /// Buffers currently sitting in the freelist (tests/metrics).
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  explicit DatagramArena(std::size_t max_pooled) : max_pooled_(max_pooled) {}

  void release(std::vector<std::uint8_t>* buf);

  const std::size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> free_;
};

}  // namespace evs::net
