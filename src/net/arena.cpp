#include "net/arena.hpp"

namespace evs::net {

DatagramRef DatagramArena::make(std::vector<std::uint8_t> bytes) {
  std::unique_ptr<std::vector<std::uint8_t>> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (buf) {
    // Recycled buffer: adopt the bytes but keep the old capacity when it is
    // larger, so steady-state receive traffic stops allocating entirely.
    *buf = std::move(bytes);
  } else {
    buf = std::make_unique<std::vector<std::uint8_t>>(std::move(bytes));
  }
  // The deleter holds a weak ref: a buffer outliving its arena (a view
  // retained past transport shutdown) is freed instead of recycled.
  std::weak_ptr<DatagramArena> weak = weak_from_this();
  return DatagramRef(buf.release(),
                     [weak](const std::vector<std::uint8_t>* p) {
                       auto* mut = const_cast<std::vector<std::uint8_t>*>(p);
                       if (auto self = weak.lock()) {
                         self->release(mut);
                       } else {
                         delete mut;
                       }
                     });
}

std::vector<std::uint8_t> DatagramArena::acquire(std::size_t size) {
  std::vector<std::uint8_t> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      buf = std::move(*free_.back());
      free_.pop_back();
    }
  }
  buf.resize(size);
  return buf;
}

void DatagramArena::recycle(std::vector<std::uint8_t> buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) return;
  free_.push_back(std::make_unique<std::vector<std::uint8_t>>(std::move(buf)));
}

void DatagramArena::release(std::vector<std::uint8_t>* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) {
    delete buf;
    return;
  }
  free_.emplace_back(buf);
}

}  // namespace evs::net
