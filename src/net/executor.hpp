// Executor: the sharded event loop that takes the live runtime from one
// thread per node to one poller per core.
//
// The thread-per-node model (PR 7) burns a kernel thread, a stack, and a
// scheduler fight per ring member — KvLiveCluster multiplies that to
// shards x nodes, which caps honest large-N benches long before the
// protocol does. The executor multiplexes N UdpTransports onto W worker
// threads (default min(hardware cores, transports)): each worker owns a
// fixed subset of transports and drives them by composing the pieces
// UdpTransport exposes for exactly this purpose —
//
//   * one ppoll() over every member's socket fd (+ the worker's eventfd, so
//     post() from any thread can wake the right worker via set_waker),
//   * the poll deadline merged across members' next_deadline_us(), so every
//     node's Scheduler timers fire with poll-granularity accuracy no matter
//     how many nodes share the worker,
//   * a service() pass per member per wakeup, whose per-call
//     max_recv_per_poll budget is the fairness bound: a neighbor's flooded
//     socket hands control back after a bounded number of dispatches, so
//     node K's token-loss timer cannot starve behind node 1's heavy
//     delivery (tests/executor/ pins this).
//
// Assignment is static round-robin at start() — no work stealing, no
// migration, so every transport keeps a single driving thread for its whole
// life and the transport's single-consumer contract (plain maps, non-atomic
// instruments) holds with no locks added. Cross-thread input arrives only
// through each transport's lock-free inbox. Instruments follow the same
// rule: each worker records into its own MetricsRegistry, merged into the
// executor-wide view by metrics() once the workers have joined.
//
// The sim Network needs none of this: it is a first-class Transport whose
// "loop" is the simulation's event queue, already multiplexing every node
// on one deterministic thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace evs {

class UdpTransport;

namespace net {

class Executor {
 public:
  struct Options {
    /// Worker threads; 0 = min(hardware cores, transport count). Clamped to
    /// the transport count — an idle worker with no members would just
    /// sleep.
    std::size_t num_workers{0};
    /// ppoll cap per iteration when no member deadline bounds it sooner.
    std::uint64_t max_wait_us{10'000};
  };

  Executor() : Executor(Options{}) {}
  explicit Executor(Options options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Register a transport (must be open; caller keeps ownership and must
  /// outlive the executor's stop()). Only before start().
  void add(UdpTransport* transport);

  /// Spawn the workers and begin driving every registered transport.
  /// Errc::invalid_argument on double-start or an empty member list.
  Status start();

  /// Join the workers, then finish() every member: each inbox closes (with
  /// its accepted tasks run on this thread — safe, the loops are gone) and
  /// later post() calls fail fast. Idempotent; harmless before start().
  void stop();

  bool running() const { return running_; }
  std::size_t num_workers() const { return workers_.size(); }

  /// Executor-wide instruments (net.executor.*): per-worker registries
  /// merged into the base view. Only safe once the workers have joined
  /// (after stop()).
  const obs::MetricsRegistry& metrics();

 private:
  struct Worker {
    std::vector<UdpTransport*> members;
    int wake_fd{-1};
    std::thread thread;
    obs::MetricsRegistry metrics;
  };

  void worker_loop(Worker& w);

  Options options_;
  std::vector<UdpTransport*> transports_;
  std::vector<Worker> workers_;
  bool started_{false};
  bool running_{false};
  std::atomic<bool> stop_{false};
  bool metrics_merged_{false};
  obs::MetricsRegistry metrics_;
};

}  // namespace net
}  // namespace evs
