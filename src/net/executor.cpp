#include "net/executor.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#include "net/udp_transport.hpp"
#include "util/assert.hpp"

namespace evs::net {

Executor::Executor(Options options) : options_(options) {}

Executor::~Executor() {
  stop();
  // The wake fds outlive stop(): a post() that won its push against the
  // inbox close may still be inside the waker's write() on another thread,
  // and close() racing that write is a use-after-close (the fd number could
  // even be recycled). After finish() every new post fails before reaching
  // the waker, and a straggler write to an open, unwatched eventfd is
  // harmless — so the fds are only closed here, when the caller guarantees
  // no thread can still be posting.
  for (auto& w : workers_) {
    if (w.wake_fd >= 0) ::close(w.wake_fd);
    w.wake_fd = -1;
  }
}

void Executor::add(UdpTransport* transport) {
  EVS_ASSERT_MSG(!started_, "Executor::add after start");
  EVS_ASSERT(transport != nullptr && transport->is_open());
  transports_.push_back(transport);
}

Status Executor::start() {
  if (started_) {
    return Status::error(Errc::invalid_argument, "Executor started twice");
  }
  if (transports_.empty()) {
    return Status::error(Errc::invalid_argument,
                         "Executor::start with no transports");
  }
  started_ = true;

  std::size_t want = options_.num_workers;
  if (want == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    want = hw == 0 ? 1 : hw;
  }
  want = std::clamp<std::size_t>(want, 1, transports_.size());

  workers_ = std::vector<Worker>(want);
  for (std::size_t i = 0; i < transports_.size(); ++i) {
    workers_[i % want].members.push_back(transports_[i]);
  }
  std::size_t max_members = 0;
  for (auto& w : workers_) {
    w.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w.wake_fd < 0) {
      for (auto& u : workers_) {
        if (u.wake_fd >= 0) ::close(u.wake_fd);
      }
      workers_.clear();
      return Status::error(Errc::transport_io, "eventfd() for worker failed");
    }
    max_members = std::max(max_members, w.members.size());
    // post() into any member now wakes the worker that owns it, not the
    // transport's private eventfd (which nothing polls anymore).
    for (UdpTransport* t : w.members) {
      const int wake_fd = w.wake_fd;
      t->set_waker([wake_fd] {
        const std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
      });
    }
  }
  metrics_.gauge("net.executor.workers")
      .set(static_cast<std::int64_t>(workers_.size()));
  metrics_.gauge("net.executor.nodes_per_worker")
      .set(static_cast<std::int64_t>(max_members));

  stop_.store(false, std::memory_order_release);
  running_ = true;
  for (auto& w : workers_) {
    w.thread = std::thread([this, &w] { worker_loop(w); });
  }
  return Status::ok_status();
}

void Executor::worker_loop(Worker& w) {
  // Cached handles: each worker records into its OWN registry (plain u64
  // instruments, single writer), merged after join.
  obs::Counter& polls = w.metrics.counter("net.executor.polls");
  obs::Counter& wakeups = w.metrics.counter("net.executor.wakeups");
  obs::Histogram& inbox_depth = w.metrics.histogram("net.executor.inbox_depth");
  obs::Histogram& poll_batch = w.metrics.histogram("net.executor.poll_batch");

  std::vector<pollfd> fds(w.members.size() + 1);
  while (!stop_.load(std::memory_order_acquire)) {
    // Merge every member's next timer / flush deadline into one wait. Each
    // transport keeps its own epoch, so deadlines convert to "microseconds
    // from now" per member before taking the min.
    std::uint64_t wait_us = options_.max_wait_us;
    for (UdpTransport* t : w.members) {
      if (auto deadline = t->next_deadline_us(); deadline.has_value()) {
        const SimTime now = t->wall_now_us();
        wait_us = std::min<std::uint64_t>(
            wait_us, *deadline > now ? *deadline - now : 0);
      }
    }
    for (std::size_t i = 0; i < w.members.size(); ++i) {
      fds[i].fd = w.members[i]->fd();
      fds[i].events = POLLIN;
      if (w.members[i]->wants_pollout()) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    fds.back().fd = w.wake_fd;
    fds.back().events = POLLIN;
    fds.back().revents = 0;

    timespec ts;
    ts.tv_sec = static_cast<time_t>(wait_us / 1'000'000);
    ts.tv_nsec = static_cast<long>((wait_us % 1'000'000) * 1'000);
    ::ppoll(fds.data(), fds.size(), &ts, nullptr);

    if ((fds.back().revents & POLLIN) != 0) {
      std::uint64_t drained = 0;
      [[maybe_unused]] ssize_t n = ::read(w.wake_fd, &drained, sizeof(drained));
      wakeups.inc();
    }
    polls.inc();
    // Service the members that have something to do: a fired fd, posted
    // work, or a deadline (timer / flush / backlog) that has come due. On a
    // token ring only ~1 of K co-scheduled members is active per hop;
    // servicing all K would pay K recvmmsg syscalls per hop and the hop
    // latency compounds around the ring. The per-call receive budget inside
    // service() is what keeps this loop fair across members.
    for (std::size_t i = 0; i < w.members.size(); ++i) {
      UdpTransport* t = w.members[i];
      bool due = fds[i].revents != 0 || t->inbox_depth() > 0;
      if (!due) {
        if (auto deadline = t->next_deadline_us(); deadline.has_value()) {
          due = *deadline <= t->wall_now_us();
        }
      }
      if (!due) continue;
      inbox_depth.record(t->inbox_depth());
      const int dispatched = t->service();
      poll_batch.record(static_cast<std::uint64_t>(dispatched));
    }
  }
}

void Executor::stop() {
  if (running_) {
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(w.wake_fd, &one, sizeof(one));
    }
    for (auto& w : workers_) {
      if (w.thread.joinable()) w.thread.join();
    }
    running_ = false;
    // The loops are gone; close each member's posting door on this thread.
    // Tasks already accepted run here — same contract as UdpTransport::run()
    // returning — and every later post() fails fast with false. The wake
    // fds stay open until destruction (see ~Executor).
    for (UdpTransport* t : transports_) t->finish();
  }
}

const obs::MetricsRegistry& Executor::metrics() {
  EVS_ASSERT_MSG(!running_, "Executor::metrics while workers are running");
  if (!metrics_merged_) {
    for (auto& w : workers_) metrics_.merge_from(w.metrics);
    metrics_merged_ = true;
  }
  return metrics_;
}

}  // namespace evs::net
