// Transport: the boundary between the protocol stack and whatever moves its
// packets.
//
// EvsNode (and everything layered on it) is written against this interface
// only: it attaches itself as an Endpoint, broadcasts/unicasts sealed wire
// frames, and schedules timers on the transport's Scheduler, which doubles
// as the stack's clock (Scheduler::now / schedule_at). Two implementations
// exist:
//
//   * sim:  Network (net/network.hpp) + a virtual-time Scheduler — the
//           deterministic discrete-event simulator every test runs on.
//   * live: UdpTransport (net/udp_transport.hpp) — real loopback UDP
//           sockets driven by a poll() event loop, with the same Scheduler
//           API mapped onto the wall clock.
//
// The protocol code cannot tell the difference; see DESIGN.md "Transport
// abstraction" for what determinism guarantees survive the move to live
// sockets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/arena.hpp"
#include "sim/scheduler.hpp"
#include "util/types.hpp"

namespace evs {

struct Packet {
  ProcessId src;
  ProcessId dst;  // meaningful only when !broadcast
  bool broadcast{false};
  /// The datagram bytes, shared rather than owned: a broadcast dispatches
  /// ONE buffer to every receiver, and message views decoded from the packet
  /// pin `data` so their payload spans stay valid after dispatch returns
  /// (see net/arena.hpp). Copying a Packet copies a refcount, not bytes.
  net::DatagramRef data;

  std::span<const std::uint8_t> payload() const {
    return data ? std::span<const std::uint8_t>(*data)
                : std::span<const std::uint8_t>{};
  }
};

/// Implemented by every protocol node attached to a transport.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_packet(const Packet& packet) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Attach a process endpoint; packets addressed to (or broadcast at) `p`
  /// are dispatched to it from then on.
  virtual void attach(ProcessId p, Endpoint* endpoint) = 0;

  /// Detach (e.g. crashed) — queued and future packets to p are dropped.
  virtual void detach(ProcessId p) = 0;

  virtual bool attached(ProcessId p) const = 0;

  /// Send to every reachable process, including the sender itself:
  /// broadcast hardware (and a UDP socket sending to its own port) loops
  /// back, and the protocol relies on hearing its own exchanges.
  virtual void broadcast(ProcessId from, std::vector<std::uint8_t> payload) = 0;

  virtual void unicast(ProcessId from, ProcessId to,
                       std::vector<std::uint8_t> payload) = 0;

  /// The transport's clock and timer wheel. In sim this is the shared
  /// virtual-time scheduler; live transports map the same API onto the wall
  /// clock (now() = microseconds since the transport opened).
  virtual Scheduler& scheduler() = 0;
};

}  // namespace evs
