// Explicit little-endian wire encoding for all protocol messages.
//
// Every message that crosses the simulated network is serialized to bytes
// and parsed back on receipt, exactly as a real implementation would do.
// Encoding is explicit byte packing (no memcpy of structs), so traces are
// platform-independent and the codec is testable in isolation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/seq_set.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace evs::wire {

class Writer {
 public:
  void u8(std::uint8_t v) {
    if (ok_) buf_.push_back(v);
  }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void pid(ProcessId p) { u32(p.value); }

  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);
  void seq_set(const SeqSet& set);
  void pid_vec(const std::vector<ProcessId>& v);
  void seq_vec(const std::vector<SeqNum>& v);

  /// False once a container exceeded the u32 length-prefix range. The
  /// writer is poisoned from that point on — the oversized container (and
  /// everything after it) is never appended, so the buffer cannot leak out
  /// as a decodable-but-truncated encoding. Encoders check this before
  /// sealing; take() asserts it as a backstop.
  bool ok() const { return ok_; }

  std::vector<std::uint8_t> take() {
    EVS_ASSERT_MSG(ok_, "wire::Writer poisoned: container size exceeded the "
                        "u32 length prefix");
    return std::move(buf_);
  }
  std::size_t size() const { return buf_.size(); }

 private:
  /// Validate a container length before writing its prefix. Sizes above
  /// UINT32_MAX used to be silently truncated by static_cast — producing a
  /// frame that decoded cleanly to the wrong container. Returns false (and
  /// poisons the writer) instead; once poisoned, all further writes are
  /// dropped. The check runs before any element is touched, so even a
  /// hostile span with a forged huge size() is rejected without a read.
  bool fits_u32(std::size_t n) {
    if (n > UINT32_MAX) ok_ = false;
    return ok_;
  }

  std::vector<std::uint8_t> buf_;
  bool ok_{true};
};

/// Decoder. A malformed buffer (which can only be an internal bug, since we
/// produced every packet ourselves) trips ok() == false; callers assert it.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean() { return u8() != 0; }
  ProcessId pid() { return ProcessId{u32()}; }
  std::string str();
  std::vector<std::uint8_t> bytes();
  /// Non-owning variant of bytes(): a view into the buffer the Reader was
  /// constructed over. The caller is responsible for pinning that buffer
  /// (see RegularMsgView::owner) — the span is dangling once it goes away.
  std::span<const std::uint8_t> bytes_view();
  SeqSet seq_set();
  std::vector<ProcessId> pid_vec();
  std::vector<SeqNum> seq_vec();

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool ok_{true};
};

// --- frames ------------------------------------------------------------------
//
// Every packet that crosses the simulated network is wrapped in a frame:
//
//   [u32 body length][u32 CRC-32 of body][body bytes]
//
// The receiver validates length and checksum before attempting to decode the
// body, so a corrupted or truncated packet is rejected cleanly instead of
// feeding garbage to the message codec. CRC-32 (polynomial 0xEDB88320)
// detects every burst error of up to 32 bits, so in particular any
// single-byte corruption anywhere in the frame is always caught: a flip in
// the body breaks the checksum, a flip in the header breaks the length or
// checksum comparison.

std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Largest frame body seal_frame will produce and open_frame will accept.
/// Far above any protocol message; a declared length beyond it is either
/// corruption or API misuse, and rejecting it early keeps a hostile header
/// from looking like a multi-gigabyte body.
inline constexpr std::size_t kMaxFrameBody = 16u << 20;  // 16 MiB

/// Bytes of framing overhead per frame: u32 length + u32 CRC-32.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Wrap a message body in a length+checksum frame. Fails with
/// Errc::payload_too_large when the body exceeds kMaxFrameBody.
Expected<std::vector<std::uint8_t>> seal_frame(std::span<const std::uint8_t> body);

/// Validate a frame and return a view of its body, or the machine-readable
/// reason it was rejected (Errc::truncated_frame, trailing_bytes,
/// crc_mismatch, payload_too_large). Never throws, never allocates, never
/// asserts: this is the hostile-byte boundary.
Expected<std::span<const std::uint8_t>> open_frame(
    std::span<const std::uint8_t> frame);

/// Append one frame for `body` onto an existing datagram buffer. Frames are
/// self-delimiting, so packing is plain concatenation: a datagram carrying
/// several messages is just their frames back to back, walked on receipt by
/// FrameCursor. Fails with Errc::payload_too_large like seal_frame, leaving
/// `out` untouched.
Status append_frame(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> body);

/// Iterator over a datagram carrying zero or more concatenated frames.
///
/// Usage:
///
///   FrameCursor cursor(datagram);
///   while (!cursor.done()) {
///     auto body = cursor.next();
///     if (!body.ok()) { /* reject the REST of the datagram */ break; }
///     dispatch(*body);
///   }
///
/// Error semantics at the hostile-byte boundary:
///   - A trailing fragment too short to hold a header, or a header declaring
///     more body bytes than remain, is Errc::bad_frame — never a silent stop,
///     so a truncated tail is observable, not dropped.
///   - A declared length above kMaxFrameBody is Errc::payload_too_large.
///   - A CRC failure is Errc::crc_mismatch. The caller must abandon the rest
///     of the datagram: once one frame is garbled its length field cannot be
///     trusted to find the next boundary.
/// After next() returns an error the cursor is poisoned: done() stays false
/// and next() keeps returning the same error.
class FrameCursor {
 public:
  explicit FrameCursor(std::span<const std::uint8_t> datagram)
      : rest_(datagram) {}

  /// True when the datagram was consumed exactly (no partial tail).
  bool done() const { return !failed_ && rest_.empty(); }

  /// The body of the next frame, or why the remainder is unusable.
  Expected<std::span<const std::uint8_t>> next();

  /// Bytes not yet consumed (diagnostic; includes a poisoned tail).
  std::size_t remaining() const { return rest_.size(); }

 private:
  std::span<const std::uint8_t> rest_;
  bool failed_{false};
  Status error_{};
};

}  // namespace evs::wire
