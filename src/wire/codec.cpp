#include "wire/codec.hpp"

#include <array>

namespace evs::wire {

void Writer::str(const std::string& s) {
  if (!fits_u32(s.size())) return;
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  if (!fits_u32(data.size())) return;
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::seq_set(const SeqSet& set) {
  if (!fits_u32(set.interval_count())) return;
  u32(static_cast<std::uint32_t>(set.interval_count()));
  for (const auto& iv : set.intervals()) {
    u64(iv.lo);
    u64(iv.hi);
  }
}

void Writer::pid_vec(const std::vector<ProcessId>& v) {
  if (!fits_u32(v.size())) return;
  u32(static_cast<std::uint32_t>(v.size()));
  for (ProcessId p : v) pid(p);
}

void Writer::seq_vec(const std::vector<SeqNum>& v) {
  if (!fits_u32(v.size())) return;
  u32(static_cast<std::uint32_t>(v.size()));
  for (SeqNum s : v) u64(s);
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  std::uint16_t lo = u8();
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Reader::u32() {
  std::uint32_t lo = u16();
  std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t Reader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::span<const std::uint8_t> Reader::bytes_view() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

SeqSet Reader::seq_set() {
  const std::uint32_t n = u32();
  // Each interval occupies 16 bytes; reject a count the buffer cannot hold
  // BEFORE reserving, or a corrupted count field becomes a multi-gigabyte
  // allocation request.
  if (!need(n * 16ULL)) return {};
  std::vector<SeqSet::Interval> intervals;
  intervals.reserve(n);
  for (std::uint32_t i = 0; i < n && ok_; ++i) {
    SeqNum lo = u64();
    SeqNum hi = u64();
    // Sorted, disjoint, non-adjacent — and nothing may follow an interval
    // ending at UINT64_MAX (its hi+1 would wrap and vacuously pass).
    if (lo > hi || (!intervals.empty() && (intervals.back().hi == UINT64_MAX ||
                                           intervals.back().hi + 1 >= lo))) {
      ok_ = false;
      return {};
    }
    intervals.push_back({lo, hi});
  }
  if (!ok_) return {};
  return SeqSet::from_intervals(std::move(intervals));
}

std::vector<ProcessId> Reader::pid_vec() {
  const std::uint32_t n = u32();
  std::vector<ProcessId> out;
  if (!need(n * 4ULL)) return out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(pid());
  return out;
}

std::vector<SeqNum> Reader::seq_vec() {
  const std::uint32_t n = u32();
  std::vector<SeqNum> out;
  if (!need(n * 8ULL)) return out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
  return out;
}

// --- frames ------------------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

/// Bounds-checked little-endian u32 read. The unchecked predecessor indexed
/// data[pos..pos+3] blind, which was only safe because every caller had
/// pre-validated the length — an invariant the packed-frame cursor cannot
/// uphold for a truncated trailing frame. Returns false instead of reading
/// out of bounds.
bool read_u32_le(std::span<const std::uint8_t> data, std::size_t pos,
                 std::uint32_t& out) {
  if (pos > data.size() || data.size() - pos < 4) return false;
  out = static_cast<std::uint32_t>(data[pos]) |
        (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
        (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
        (static_cast<std::uint32_t>(data[pos + 3]) << 24);
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Expected<std::vector<std::uint8_t>> seal_frame(std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBody) {
    return Status::error(Errc::payload_too_large,
                         "frame body of " + std::to_string(body.size()) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFrameBody) + "-byte frame limit");
  }
  Writer w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u32(crc32(body));
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Expected<std::span<const std::uint8_t>> open_frame(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::error(Errc::truncated_frame, "frame shorter than its header");
  }
  std::uint32_t length = 0;
  std::uint32_t checksum = 0;
  read_u32_le(frame, 0, length);
  read_u32_le(frame, 4, checksum);
  if (length > kMaxFrameBody) {
    return Status::error(Errc::payload_too_large, "declared body length too large");
  }
  if (frame.size() - kFrameHeaderBytes < length) {
    return Status::error(Errc::truncated_frame, "frame shorter than declared body");
  }
  if (frame.size() - kFrameHeaderBytes > length) {
    return Status::error(Errc::trailing_bytes, "frame longer than declared body");
  }
  const auto body = frame.subspan(kFrameHeaderBytes);
  if (crc32(body) != checksum) {
    return Status::error(Errc::crc_mismatch, "frame body fails CRC-32 check");
  }
  return body;
}

Status append_frame(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBody) {
    return Status::error(Errc::payload_too_large,
                         "frame body of " + std::to_string(body.size()) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFrameBody) + "-byte frame limit");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(body.size());
  const std::uint32_t checksum = crc32(body);
  out.reserve(out.size() + kFrameHeaderBytes + body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(length >> shift));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(checksum >> shift));
  }
  out.insert(out.end(), body.begin(), body.end());
  return Status::ok_status();
}

Expected<std::span<const std::uint8_t>> FrameCursor::next() {
  if (failed_) return error_;
  auto fail = [this](Errc code, const char* what) -> Expected<std::span<const std::uint8_t>> {
    failed_ = true;
    error_ = Status::error(code, what);
    return error_;
  };
  std::uint32_t length = 0;
  std::uint32_t checksum = 0;
  // A tail too short for even a header is a torn trailing frame, not a clean
  // end of datagram — surface it so the sender's truncation is observable.
  if (!read_u32_le(rest_, 0, length) || !read_u32_le(rest_, 4, checksum)) {
    return fail(Errc::bad_frame, "truncated frame header in packed datagram");
  }
  if (length > kMaxFrameBody) {
    return fail(Errc::payload_too_large, "declared body length too large");
  }
  if (rest_.size() - kFrameHeaderBytes < length) {
    return fail(Errc::bad_frame, "truncated frame body in packed datagram");
  }
  const auto body = rest_.subspan(kFrameHeaderBytes, length);
  if (crc32(body) != checksum) {
    // The length field of a garbled frame cannot be trusted to find the next
    // frame boundary; the caller must abandon the rest of the datagram.
    return fail(Errc::crc_mismatch, "frame body fails CRC-32 check");
  }
  rest_ = rest_.subspan(kFrameHeaderBytes + length);
  return body;
}

}  // namespace evs::wire
