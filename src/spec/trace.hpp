// Trace model: the four event types of the extended virtual synchrony
// specification (Section 2 of the paper):
//
//   deliver_conf_p(c)  - p delivers a configuration change initiating c
//   send_p(m, c)       - p sends (originates) m while a member of c
//   deliver_p(m, c)    - p delivers m while a member of c
//   fail_p(c)          - p actually fails while a member of c
//
// Every protocol node appends its events to a TraceLog as they happen;
// the SpecChecker (spec/checker.hpp) then validates the complete global
// trace against Specifications 1.1-7.2 and, through the VS checker, against
// Birman's legality conditions. Events carry the implementation's proposed
// `ord` value, which the checker verifies rather than trusts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "evs/config.hpp"
#include "util/types.hpp"

namespace evs {

enum class EventType : std::uint8_t { Send, Deliver, DeliverConf, Fail };

const char* to_string(EventType t);

struct TraceEvent {
  EventType type{EventType::Send};
  ProcessId process;
  std::uint64_t pindex{0};  ///< position in this process's program order
  SimTime time{0};          ///< virtual time (diagnostics only; not used by specs)

  // Send / Deliver events:
  MsgId msg;
  Service service{Service::Agreed};
  SeqNum seq{0};  ///< ring sequence number of the message (diagnostics)

  // The configuration the event occurred in (for DeliverConf: the one being
  // initiated).
  ConfigId config;

  // DeliverConf only: the agreed membership.
  std::vector<ProcessId> members;

  /// Implementation-proposed logical time (Spec 6). Fail events carry none.
  std::optional<Ord> ord;

  std::string describe() const;
};

class TraceLog {
 public:
  /// Append an event; assigns the per-process program-order index.
  void record(TraceEvent e);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear();

  /// Events of a single process, in program order.
  std::vector<const TraceEvent*> of_process(ProcessId p) const;

  /// All distinct processes appearing in the trace.
  std::vector<ProcessId> processes() const;

  std::string dump() const;

 private:
  std::vector<TraceEvent> events_;
  std::unordered_map<ProcessId, std::uint64_t> next_pindex_;
};

}  // namespace evs
