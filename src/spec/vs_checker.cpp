#include "spec/vs_checker.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace evs {
namespace {
constexpr std::uint32_t kIncarnationShift = 20;
}  // namespace

ProcessId vs_synth_id(ProcessId pid, std::uint32_t incarnation) {
  EVS_ASSERT(pid.value < (1u << kIncarnationShift));
  return ProcessId{pid.value | (incarnation << kIncarnationShift)};
}

ProcessId vs_base_pid(ProcessId synth) {
  return ProcessId{synth.value & ((1u << kIncarnationShift) - 1)};
}

std::uint32_t vs_incarnation_of(ProcessId synth) {
  return synth.value >> kIncarnationShift;
}

std::string VsEvent::describe() const {
  std::string out;
  switch (type) {
    case VsEventType::View: {
      out = "view_" + evs::to_string(process) + "(g^" + std::to_string(view_id) + " {";
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ",";
        out += evs::to_string(members[i]);
      }
      out += "})";
      break;
    }
    case VsEventType::Send:
      out = "send_" + evs::to_string(process) + "(" + evs::to_string(msg) + ", g^" +
            std::to_string(view_id) + ")";
      break;
    case VsEventType::Deliver:
      out = "deliver_" + evs::to_string(process) + "(" + evs::to_string(msg) +
            ", g^" + std::to_string(view_id) + ")";
      break;
    case VsEventType::Stop: out = "stop_" + evs::to_string(process); break;
  }
  out += " @" + std::to_string(time) + "us #" + std::to_string(pindex);
  return out;
}

void VsTraceLog::record(VsEvent e) {
  e.pindex = next_pindex_[e.process]++;
  events_.push_back(std::move(e));
}

void VsTraceLog::clear() {
  events_.clear();
  next_pindex_.clear();
}

std::string VsTraceLog::dump() const {
  std::string out;
  for (const auto& e : events_) {
    out += e.describe();
    out += '\n';
  }
  return out;
}

VsChecker::VsChecker(const VsTraceLog& trace, Options options)
    : trace_(trace), options_(options) {
  for (const VsEvent& e : trace_.events()) {
    timelines_[e.process].push_back(&e);
    switch (e.type) {
      case VsEventType::View: view_events_[e.view_id].push_back(&e); break;
      case VsEventType::Send:
        if (send_of_.count(e.msg) > 0) {
          violation("C1", "message " + to_string(e.msg) + " sent twice");
        }
        send_of_[e.msg] = &e;
        break;
      case VsEventType::Deliver: deliveries_of_[e.msg].push_back(&e); break;
      case VsEventType::Stop: break;
    }
  }
}

void VsChecker::violation(const std::string& what, const std::string& detail) {
  violations_.push_back({what, detail});
}

std::vector<Violation> VsChecker::check_all() {
  check_views();
  check_view_uniqueness();
  check_continuity();
  check_delivery_views();
  check_delivery_ords();
  check_atomicity();
  check_self_delivery();
  return violations_;
}

std::size_t VsChecker::check_views() {
  const std::size_t before = violations_.size();
  for (const auto& [id, events] : view_events_) {
    for (const VsEvent* e : events) {
      if (e->members != events.front()->members) {
        violation("VS-view", "view g^" + std::to_string(id) +
                                 " announced with different memberships");
      }
      // L3: same logical time at every process.
      if (e->ord != events.front()->ord) {
        violation("L3", "view g^" + std::to_string(id) +
                            " has inconsistent logical times");
      }
      // A process only installs views it belongs to.
      if (!std::binary_search(e->members.begin(), e->members.end(), e->process)) {
        violation("VS-view", to_string(e->process) + " installed view g^" +
                                 std::to_string(id) + " it is not a member of");
      }
    }
    // Every member of the view installs it, unless it stopped or the run was
    // cut short. With primary-partition semantics a member that never
    // installs the view must not appear in any later view either — that is
    // covered by check_atomicity on its deliveries.
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_view_uniqueness() {
  // Primary history Uniqueness (paper 2.2): the installed views form a
  // single totally ordered history — per process strictly increasing ids,
  // and one membership per id (checked above).
  const std::size_t before = violations_.size();
  for (const auto& [p, events] : timelines_) {
    std::uint64_t last = 0;
    for (const VsEvent* e : events) {
      if (e->type != VsEventType::View) continue;
      if (e->view_id <= last) {
        violation("VS-unique", to_string(p) + " installed view g^" +
                                   std::to_string(e->view_id) + " after g^" +
                                   std::to_string(last));
      }
      last = e->view_id;
    }
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_continuity() {
  // Primary history Continuity (paper 2.2): consecutive primary views share
  // at least one member. The property is about *processes*, so compare base
  // process ids — a process merged back under a new incarnation (Section
  // 5.2 renaming) still carries the primary's state continuity.
  const std::size_t before = violations_.size();
  const VsEvent* prev = nullptr;
  for (const auto& [id, events] : view_events_) {
    const VsEvent* cur = events.front();
    if (prev != nullptr) {
      bool shared = false;
      for (ProcessId p : prev->members) {
        for (ProcessId q : cur->members) {
          if (vs_base_pid(p) == vs_base_pid(q)) {
            shared = true;
            break;
          }
        }
        if (shared) break;
      }
      if (!shared) {
        violation("VS-continuity", "views g^" + std::to_string(prev->view_id) +
                                       " and g^" + std::to_string(cur->view_id) +
                                       " share no member");
      }
    }
    prev = cur;
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_delivery_views() {
  // L4: all deliveries of a message occur in the same view.
  const std::size_t before = violations_.size();
  for (const auto& [m, dels] : deliveries_of_) {
    for (const VsEvent* d : dels) {
      if (d->view_id != dels.front()->view_id) {
        violation("L4", "message " + to_string(m) + " delivered in views g^" +
                            std::to_string(dels.front()->view_id) + " and g^" +
                            std::to_string(d->view_id));
      }
    }
    std::set<ProcessId> seen;
    for (const VsEvent* d : dels) {
      if (!seen.insert(d->process).second) {
        violation("C1", "message " + to_string(m) + " delivered twice at " +
                            to_string(d->process));
      }
    }
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_delivery_ords() {
  const std::size_t before = violations_.size();
  // L5: all deliveries of one message share a logical time.
  for (const auto& [m, dels] : deliveries_of_) {
    for (const VsEvent* d : dels) {
      if (d->ord != dels.front()->ord) {
        violation("L5", "message " + to_string(m) +
                            " delivered at different logical times");
      }
    }
  }
  // L1/L2: per process, logical times strictly increase in program order.
  for (const auto& [p, events] : timelines_) {
    std::optional<VsOrd> last;
    for (const VsEvent* e : events) {
      if (!e->ord.has_value()) continue;
      if (last.has_value() && !(*last < *e->ord)) {
        violation("L1", "logical time inversion at " + to_string(p) + ": " +
                            e->describe());
      }
      last = *e->ord;
    }
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_atomicity() {
  // C3: a message delivered by one process in view g^x is delivered by every
  // member of g^x — unless that member stopped (the extend mechanism imputes
  // delivery to it) or the trace is not quiescent.
  const std::size_t before = violations_.size();
  if (!options_.quiescent) return 0;

  std::set<ProcessId> stopped;
  for (const VsEvent& e : trace_.events()) {
    if (e.type == VsEventType::Stop) stopped.insert(e.process);
  }

  for (const auto& [m, dels] : deliveries_of_) {
    const std::uint64_t view = dels.front()->view_id;
    auto vit = view_events_.find(view);
    if (vit == view_events_.end()) {
      violation("L4", "message " + to_string(m) + " delivered in unknown view g^" +
                          std::to_string(view));
      continue;
    }
    for (ProcessId q : vit->second.front()->members) {
      bool delivered = false;
      for (const VsEvent* d : dels) {
        if (d->process == q) delivered = true;
      }
      if (!delivered && stopped.count(q) == 0) {
        violation("C3", "message " + to_string(m) + " delivered in g^" +
                            std::to_string(view) + " but member " + to_string(q) +
                            " never delivered it and never stopped");
      }
    }
  }
  return violations_.size() - before;
}

std::size_t VsChecker::check_self_delivery() {
  // C2 on actual histories: a sender delivers its own message unless it
  // stopped (the extend mechanism completes the history for stopped ones).
  const std::size_t before = violations_.size();
  if (!options_.quiescent) return 0;
  std::set<ProcessId> stopped;
  for (const VsEvent& e : trace_.events()) {
    if (e.type == VsEventType::Stop) stopped.insert(e.process);
  }
  for (const auto& [m, send] : send_of_) {
    if (stopped.count(send->process) > 0) continue;
    bool delivered = false;
    auto dit = deliveries_of_.find(m);
    if (dit != deliveries_of_.end()) {
      for (const VsEvent* d : dit->second) {
        if (d->process == send->process) delivered = true;
      }
    }
    if (!delivered) {
      violation("C2", to_string(send->process) + " never delivered its own " +
                          to_string(m));
    }
  }
  return violations_.size() - before;
}

}  // namespace evs
