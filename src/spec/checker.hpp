// SpecChecker: machine-checks a global trace against the extended virtual
// synchrony model, Specifications 1.1-7.2 of the paper (Section 2.1).
//
// The checker is intentionally independent of the protocol implementation:
// it consumes only TraceLog events (send / deliver / deliver_conf / fail,
// with the implementation's proposed ord values) and rebuilds the precedes
// relation itself from program order plus send->deliver edges. Anything the
// protocol got wrong — a message delivered in two configurations, a
// transitional configuration disagreeing on its delivery set, an ord value
// that contradicts causality — surfaces as a Violation naming the spec.
//
// Checks that are inherently about *final* states (Spec 2.1's "all members
// install the configuration", Spec 3's "eventually delivers its own
// message", Spec 7.1's "every member delivers or fails") are only fully
// enforceable on a quiesced trace: pass `quiescent = true` when the
// simulation ran until protocol silence; otherwise those checks skip
// processes whose trace is still mid-configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spec/trace.hpp"

namespace evs {

struct Violation {
  std::string spec;    ///< e.g. "1.4", "6.2", "7.1"
  std::string detail;  ///< human-readable description with event dumps
};

class SpecChecker {
 public:
  struct Options {
    bool quiescent{true};  ///< trace ran to protocol silence
  };

  explicit SpecChecker(const TraceLog& trace) : SpecChecker(trace, Options{}) {}
  SpecChecker(const TraceLog& trace, Options options);

  /// Run every check; returns all violations found (empty == conformant).
  std::vector<Violation> check_all();

  // Individual specification groups (each appends to the violation list and
  // also returns the number of violations it added).
  std::size_t check_basic_delivery();     // Specs 1.1-1.4
  std::size_t check_config_changes();     // Specs 2.1, 2.2 (+ ord of 2.3/2.4)
  std::size_t check_config_cuts();        // Specs 2.3, 2.4 via reachability
  std::size_t check_self_delivery();      // Spec 3
  std::size_t check_failure_atomicity();  // Spec 4
  std::size_t check_causal_delivery();    // Spec 5
  std::size_t check_total_order();        // Specs 6.1-6.3
  std::size_t check_safe_delivery();      // Specs 7.1-7.2

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  struct ProcessTimeline {
    std::vector<const TraceEvent*> events;  // program order
  };

  void violation(const std::string& spec, const std::string& detail);

  /// The regular ring a configuration is anchored to: itself for regular
  /// configurations, the preceding regular ring for transitional ones
  /// (the paper's reg_p(c)).
  static RingId anchor(const ConfigId& c) {
    return c.transitional ? c.prior_ring : c.ring;
  }

  const TraceLog& trace_;
  Options options_;
  std::vector<Violation> violations_;

  // Indexes (built once in the constructor).
  std::map<ProcessId, ProcessTimeline> timelines_;
  std::map<MsgId, std::vector<const TraceEvent*>> sends_of_;
  std::map<MsgId, std::vector<const TraceEvent*>> deliveries_of_;
  std::map<ConfigId, std::vector<const TraceEvent*>> conf_events_;
  std::map<ConfigId, std::vector<ProcessId>> conf_members_;
};

}  // namespace evs
