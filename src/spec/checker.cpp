#include "spec/checker.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace evs {
namespace {

bool is_member(const std::vector<ProcessId>& members, ProcessId p) {
  return std::binary_search(members.begin(), members.end(), p);
}

}  // namespace

SpecChecker::SpecChecker(const TraceLog& trace, Options options)
    : trace_(trace), options_(options) {
  for (const TraceEvent& e : trace_.events()) {
    timelines_[e.process].events.push_back(&e);
    switch (e.type) {
      case EventType::Send: sends_of_[e.msg].push_back(&e); break;
      case EventType::Deliver: deliveries_of_[e.msg].push_back(&e); break;
      case EventType::DeliverConf: {
        conf_events_[e.config].push_back(&e);
        auto [it, inserted] = conf_members_.try_emplace(e.config, e.members);
        if (!inserted && it->second != e.members) {
          violation("2.x", "configuration " + to_string(e.config) +
                               " announced with two different memberships");
        }
        break;
      }
      case EventType::Fail: break;
    }
  }
}

void SpecChecker::violation(const std::string& spec, const std::string& detail) {
  violations_.push_back({spec, detail});
}

std::vector<Violation> SpecChecker::check_all() {
  check_basic_delivery();
  check_config_changes();
  check_config_cuts();
  check_self_delivery();
  check_failure_atomicity();
  check_causal_delivery();
  check_total_order();
  check_safe_delivery();
  return violations_;
}

// ---------------------------------------------------------------------------
// Specs 1.1-1.4

std::size_t SpecChecker::check_basic_delivery() {
  const std::size_t before = violations_.size();

  // 1.1/1.2 (partial order, single thread of control): the trace is recorded
  // in simulation order, so program order is total per process by
  // construction; we verify the send->deliver edges do not invert recorded
  // order within a process (which would make the precedes relation cyclic).
  for (const auto& [m, dels] : deliveries_of_) {
    auto sit = sends_of_.find(m);
    if (sit == sends_of_.end()) {
      violation("1.3", "message " + to_string(m) + " delivered but never sent");
      continue;
    }
    const TraceEvent* send = sit->second.front();
    for (const TraceEvent* d : dels) {
      if (d->process == send->process && d->pindex < send->pindex) {
        violation("1.1", "delivery of " + to_string(m) + " precedes its send at " +
                             to_string(d->process));
      }
      if (d->time < send->time) {
        violation("1.3", "delivery of " + to_string(m) + " at " +
                             to_string(d->process) + " before its send");
      }
      // 1.3: delivered in the configuration it was sent in, or in an
      // immediately following transitional configuration of that ring.
      if (anchor(d->config) != send->config.ring) {
        violation("1.3", "message " + to_string(m) + " sent in " +
                             to_string(send->config) + " but delivered in " +
                             to_string(d->config) + " at " + to_string(d->process));
      }
    }
  }

  // 1.4: a message is sent once, in a regular configuration, and no process
  // delivers it in two different configurations (or twice at all).
  for (const auto& [m, sends] : sends_of_) {
    if (sends.size() > 1) {
      violation("1.4", "message " + to_string(m) + " sent " +
                           std::to_string(sends.size()) + " times");
    }
    for (const TraceEvent* s : sends) {
      if (s->config.transitional) {
        violation("1.4", "message " + to_string(m) + " sent in transitional " +
                             to_string(s->config));
      }
      if (s->process != m.sender) {
        violation("1.4", "message " + to_string(m) + " sent by wrong process " +
                             to_string(s->process));
      }
    }
  }
  for (const auto& [m, dels] : deliveries_of_) {
    std::map<ProcessId, const TraceEvent*> per_process;
    for (const TraceEvent* d : dels) {
      auto [it, inserted] = per_process.emplace(d->process, d);
      if (!inserted) {
        violation("1.4", "message " + to_string(m) + " delivered twice at " +
                             to_string(d->process) + " (in " +
                             to_string(it->second->config) + " and " +
                             to_string(d->config) + ")");
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Specs 2.1-2.4

std::size_t SpecChecker::check_config_changes() {
  const std::size_t before = violations_.size();

  // 2.2: every send/deliver/fail happens inside the configuration installed
  // by the most recent deliver_conf of that process, and a process delivers
  // each configuration change at most once.
  for (const auto& [p, timeline] : timelines_) {
    std::optional<ConfigId> current;
    std::set<ConfigId> installed;
    for (const TraceEvent* e : timeline.events) {
      switch (e->type) {
        case EventType::DeliverConf:
          if (!installed.insert(e->config).second) {
            violation("2.1", to_string(p) + " delivered configuration change for " +
                                 to_string(e->config) + " twice");
          }
          if (!is_member(e->members, p)) {
            violation("2.x", to_string(p) + " installed " + to_string(e->config) +
                                 " it is not a member of");
          }
          current = e->config;
          break;
        case EventType::Send:
        case EventType::Deliver:
        case EventType::Fail:
          if (!current.has_value()) {
            violation("2.2", to_string(p) + " event before any configuration: " +
                                 e->describe());
          } else if (*current != e->config) {
            violation("2.2", to_string(p) + " event tagged " + to_string(e->config) +
                                 " while in " + to_string(*current) + ": " +
                                 e->describe());
          }
          if (e->type == EventType::Fail) current.reset();
          break;
      }
    }
  }

  // 2.1 (quiescent form): if a process ends the trace alive in configuration
  // c, every member of c also ends the trace alive in c.
  if (options_.quiescent) {
    std::map<ProcessId, std::optional<ConfigId>> final_config;
    for (const auto& [p, timeline] : timelines_) {
      std::optional<ConfigId> current;
      for (const TraceEvent* e : timeline.events) {
        if (e->type == EventType::DeliverConf) current = e->config;
        if (e->type == EventType::Fail) current.reset();
      }
      final_config[p] = current;
    }
    for (const auto& [p, cfg] : final_config) {
      if (!cfg.has_value()) continue;
      const auto& members = conf_members_.at(*cfg);
      for (ProcessId q : members) {
        auto it = final_config.find(q);
        if (it == final_config.end() || !it->second.has_value() ||
            *it->second != *cfg) {
          violation("2.1", to_string(p) + " ends in " + to_string(*cfg) +
                               " but member " + to_string(q) + " does not");
        }
      }
    }
  }

  // 2.3/2.4: configuration change deliveries form a consistent cut of the
  // precedes relation. We verify the message-level consequence: a message
  // delivered before the change at one member and after it at another would
  // have the delivery both precede and follow the (logically simultaneous)
  // change. Equivalently: for a configuration c, the set of messages
  // delivered before deliver_conf(c) must not appear after it elsewhere
  // when a precedes chain exists. With deliveries of a message sharing one
  // ord value, this reduces to the ord checks of Spec 6 plus: no process
  // delivers a message of ring R after installing a configuration anchored
  // to a newer ring of the same lineage — which check 2.2 already enforces
  // through configuration tagging. Here we add the direct pairwise check on
  // configuration ord values.
  for (const auto& [c, events] : conf_events_) {
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i]->ord != events[0]->ord) {
        violation("2.3", "configuration change " + to_string(c) +
                             " has inconsistent ord across processes");
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Specs 2.3 / 2.4 — configuration changes are a consistent cut

std::size_t SpecChecker::check_config_cuts() {
  // Specs 2.3 and 2.4 state that an event preceding (following) a
  // configuration change at one process precedes (follows) it at every
  // process: the installs of one configuration are logically simultaneous.
  // Formally, extend the precedes relation by identifying the deliver_conf
  // events of each configuration; 2.3/2.4 hold iff the identified relation
  // is still a partial order — i.e. contracting each install family into a
  // single node leaves the event graph acyclic. A cycle is exactly an event
  // that follows the change at one member while (transitively) preceding it
  // at another.
  const std::size_t before = violations_.size();
  const auto& events = trace_.events();
  const std::size_t n = events.size();
  if (n == 0) return 0;

  // Contracted node ids: one per event, shared by same-config installs.
  std::vector<std::uint32_t> node(n);
  std::uint32_t next_node = 0;
  {
    std::map<ConfigId, std::uint32_t> conf_node;
    for (std::uint32_t i = 0; i < n; ++i) {
      const TraceEvent& e = events[i];
      if (e.type == EventType::DeliverConf) {
        auto [it, inserted] = conf_node.try_emplace(e.config, next_node);
        if (inserted) ++next_node;
        node[i] = it->second;
      } else {
        node[i] = next_node++;
      }
    }
  }

  // Edges of the operational precedes relation, contracted.
  std::vector<std::vector<std::uint32_t>> succ(next_node);
  {
    std::map<ProcessId, std::uint32_t> last_of;
    std::map<MsgId, std::uint32_t> send_node;
    for (std::uint32_t i = 0; i < n; ++i) {
      const TraceEvent& e = events[i];
      if (auto it = last_of.find(e.process); it != last_of.end()) {
        if (it->second != node[i]) succ[it->second].push_back(node[i]);
      }
      last_of[e.process] = node[i];
      if (e.type == EventType::Send) send_node[e.msg] = node[i];
      if (e.type == EventType::Deliver) {
        auto it = send_node.find(e.msg);
        if (it != send_node.end() && it->second != node[i]) {
          succ[it->second].push_back(node[i]);
        }
      }
    }
  }

  // Cycle detection (iterative three-colour DFS).
  std::vector<std::uint8_t> colour(next_node, 0);  // 0 white, 1 grey, 2 black
  bool cyclic = false;
  for (std::uint32_t root = 0; root < next_node && !cyclic; ++root) {
    if (colour[root] != 0) continue;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    colour[root] = 1;
    while (!stack.empty() && !cyclic) {
      auto& [v, edge] = stack.back();
      if (edge < succ[v].size()) {
        const std::uint32_t w = succ[v][edge++];
        if (colour[w] == 1) {
          cyclic = true;
        } else if (colour[w] == 0) {
          colour[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        colour[v] = 2;
        stack.pop_back();
      }
    }
  }
  if (cyclic) {
    violation("2.3",
              "identifying same-configuration installs creates a precedes cycle: "
              "some event follows the configuration change at one process but "
              "precedes it at another (Specs 2.3/2.4)");
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Spec 3

std::size_t SpecChecker::check_self_delivery() {
  const std::size_t before = violations_.size();
  for (const auto& [p, timeline] : timelines_) {
    for (std::size_t i = 0; i < timeline.events.size(); ++i) {
      const TraceEvent* s = timeline.events[i];
      if (s->type != EventType::Send) continue;
      const RingId ring = s->config.ring;
      bool delivered = false;
      bool exempt = false;       // failed while in com_p(c)
      bool triggered = false;    // delivered a config other than trans_p(c)
      for (std::size_t j = i + 1; j < timeline.events.size(); ++j) {
        const TraceEvent* e = timeline.events[j];
        if (e->type == EventType::Deliver && e->msg == s->msg) {
          delivered = true;
          break;
        }
        if (e->type == EventType::Fail) {
          exempt = true;
          break;
        }
        if (e->type == EventType::DeliverConf) {
          const bool is_own_trans =
              e->config.transitional && e->config.prior_ring == ring;
          if (!is_own_trans) {
            triggered = true;
            break;
          }
        }
      }
      if (triggered && !delivered && !exempt) {
        violation("3", to_string(p) + " never delivered its own message " +
                           to_string(s->msg) + " sent in " + to_string(s->config));
      }
      if (options_.quiescent && !triggered && !delivered && !exempt) {
        // Quiesced run that ended with the message still undelivered.
        violation("3", to_string(p) + " ended the run without delivering its own " +
                           to_string(s->msg));
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Spec 4

std::size_t SpecChecker::check_failure_atomicity() {
  const std::size_t before = violations_.size();
  // For each process and configuration: the set of messages delivered while
  // in that configuration, plus the configuration installed immediately
  // afterwards.
  struct Residence {
    std::set<MsgId> delivered;
    std::optional<ConfigId> next;
  };
  std::map<ProcessId, std::map<ConfigId, Residence>> residences;
  for (const auto& [p, timeline] : timelines_) {
    std::optional<ConfigId> current;
    for (const TraceEvent* e : timeline.events) {
      switch (e->type) {
        case EventType::DeliverConf:
          if (current.has_value()) residences[p][*current].next = e->config;
          residences[p][e->config];  // ensure exists even if empty
          current = e->config;
          break;
        case EventType::Deliver:
          if (current.has_value()) residences[p][*current].delivered.insert(e->msg);
          break;
        case EventType::Fail: current.reset(); break;
        case EventType::Send: break;
      }
    }
  }
  for (auto pit = residences.begin(); pit != residences.end(); ++pit) {
    for (auto qit = std::next(pit); qit != residences.end(); ++qit) {
      for (const auto& [c, rp] : pit->second) {
        auto rq_it = qit->second.find(c);
        if (rq_it == qit->second.end()) continue;
        const Residence& rq = rq_it->second;
        if (!rp.next.has_value() || !rq.next.has_value()) continue;
        if (*rp.next != *rq.next) continue;  // did not proceed together
        if (rp.delivered != rq.delivered) {
          violation("4", to_string(pit->first) + " and " + to_string(qit->first) +
                             " both moved " + to_string(c) + " -> " +
                             to_string(*rp.next) +
                             " but delivered different message sets (" +
                             std::to_string(rp.delivered.size()) + " vs " +
                             std::to_string(rq.delivered.size()) + ")");
        }
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Spec 5

std::size_t SpecChecker::check_causal_delivery() {
  const std::size_t before = violations_.size();
  // send_p(m, c) -> send_q(m', c) is the transitive closure of program order
  // and send->deliver edges restricted to sends of one configuration. The
  // trace is recorded in simulation order, which is a valid topological
  // order of the precedes relation, so a single forward pass suffices:
  // each process accumulates, per origin ring, the set of messages whose
  // send causally precedes its next send (its own earlier sends, messages
  // it delivered, and — transitively — their own causal priors).
  //
  // causal_priors[m'] = messages of the same configuration whose send
  // precedes send(m').
  std::map<MsgId, std::set<MsgId>> causal_priors;
  std::map<ProcessId, std::map<RingId, std::set<MsgId>>> known;
  for (const TraceEvent& e : trace_.events()) {
    if (e.type == EventType::Deliver) {
      auto& k = known[e.process][anchor(e.config)];
      auto pit = causal_priors.find(e.msg);
      if (pit != causal_priors.end()) k.insert(pit->second.begin(), pit->second.end());
      k.insert(e.msg);
    } else if (e.type == EventType::Send) {
      auto& k = known[e.process][e.config.ring];
      causal_priors[e.msg] = k;
      k.insert(e.msg);
    } else if (e.type == EventType::Fail) {
      known[e.process].clear();  // volatile state is lost with the process
    }
  }
  // Fast lookup: for each process, delivery pindex per message.
  std::map<ProcessId, std::map<MsgId, const TraceEvent*>> delivery_at;
  for (const auto& [m, dels] : deliveries_of_) {
    for (const TraceEvent* d : dels) delivery_at[d->process][m] = d;
  }
  for (const auto& [m2, priors] : causal_priors) {
    auto dit = deliveries_of_.find(m2);
    if (dit == deliveries_of_.end()) continue;
    for (const TraceEvent* d2 : dit->second) {
      const auto& mine = delivery_at[d2->process];
      for (const MsgId& m1 : priors) {
        auto d1_it = mine.find(m1);
        if (d1_it == mine.end()) {
          violation("5", to_string(d2->process) + " delivered " + to_string(m2) +
                             " without its causal predecessor " + to_string(m1));
        } else if (d1_it->second->pindex > d2->pindex) {
          violation("5", to_string(d2->process) + " delivered " + to_string(m2) +
                             " before its causal predecessor " + to_string(m1));
        }
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Specs 6.1-6.3

std::size_t SpecChecker::check_total_order() {
  const std::size_t before = violations_.size();

  // 6.2: all deliveries of one message share an ord; all deliveries of one
  // configuration change share an ord (checked in 2.3 as well).
  for (const auto& [m, dels] : deliveries_of_) {
    for (std::size_t i = 1; i < dels.size(); ++i) {
      if (dels[i]->ord != dels[0]->ord) {
        violation("6.2", "message " + to_string(m) +
                             " delivered at different logical times");
      }
    }
  }

  // 6.1: ord respects the precedes relation. Program order: walk each
  // timeline carrying the maximum ord seen (events without ord, i.e. fails,
  // propagate the carry). Cross-process edges: send(m) -> deliver(m).
  for (const auto& [p, timeline] : timelines_) {
    std::optional<Ord> carry;
    const TraceEvent* carry_event = nullptr;
    for (const TraceEvent* e : timeline.events) {
      if (!e->ord.has_value()) continue;
      if (carry.has_value() && !(*carry < *e->ord)) {
        violation("6.1", "program order ord inversion at " + to_string(p) + ": " +
                             carry_event->describe() + " !< " + e->describe());
      }
      if (!carry.has_value() || *carry < *e->ord) {
        carry = *e->ord;
        carry_event = e;
      }
    }
  }
  for (const auto& [m, dels] : deliveries_of_) {
    auto sit = sends_of_.find(m);
    if (sit == sends_of_.end()) continue;
    const TraceEvent* s = sit->second.front();
    if (!s->ord.has_value()) continue;
    for (const TraceEvent* d : dels) {
      if (d->ord.has_value() && !(*s->ord < *d->ord)) {
        violation("6.1", "send !< deliver for " + to_string(m));
      }
    }
  }

  // 6.3: no gaps against a peer's delivery order. For processes p, q and
  // messages m, m' of the same origin ring with seq(m) < seq(m'), if p
  // delivered both and q delivered m', then q must deliver m whenever m's
  // sender is a member of the configuration in which q delivered m'.
  struct DeliveredMsg {
    SeqNum seq;
    MsgId id;
    const TraceEvent* event;
  };
  std::map<ProcessId, std::map<RingId, std::vector<DeliveredMsg>>> by_ring;
  for (const auto& [m, dels] : deliveries_of_) {
    for (const TraceEvent* d : dels) {
      by_ring[d->process][anchor(d->config)].push_back({d->seq, m, d});
    }
  }
  for (auto& [p, rings] : by_ring) {
    for (auto& [r, v] : rings) {
      std::sort(v.begin(), v.end(),
                [](const DeliveredMsg& a, const DeliveredMsg& b) { return a.seq < b.seq; });
    }
  }
  for (const auto& [p, p_rings] : by_ring) {
    for (const auto& [q, q_rings] : by_ring) {
      if (p == q) continue;
      for (const auto& [ring, dp] : p_rings) {
        auto qr = q_rings.find(ring);
        if (qr == q_rings.end()) continue;
        const auto& dq = qr->second;
        std::set<SeqNum> q_seqs;
        for (const auto& d : dq) q_seqs.insert(d.seq);
        // For each message p delivered that q did not, is there a later
        // common message whose q-side configuration includes the sender?
        for (const auto& dm : dp) {
          if (q_seqs.count(dm.seq) > 0) continue;
          for (const auto& dq_msg : dq) {
            if (dq_msg.seq <= dm.seq) continue;
            // q delivered dq_msg (seq greater) in some configuration c'.
            const auto& members = conf_members_.at(dq_msg.event->config);
            if (is_member(members, dm.id.sender)) {
              violation("6.3", to_string(q) + " delivered seq " +
                                   std::to_string(dq_msg.seq) + " of " +
                                   to_string(ring) + " but skipped seq " +
                                   std::to_string(dm.seq) + " (sender " +
                                   to_string(dm.id.sender) +
                                   " is in its configuration) which " +
                                   to_string(p) + " delivered");
              break;
            }
          }
        }
      }
    }
  }
  return violations_.size() - before;
}

// ---------------------------------------------------------------------------
// Specs 7.1-7.2

std::size_t SpecChecker::check_safe_delivery() {
  const std::size_t before = violations_.size();

  // Final state per process: last installed configuration (nullopt after a
  // fail with no re-start) and whether the process ever failed while
  // anchored to a given ring.
  std::map<ProcessId, std::optional<ConfigId>> final_config;
  std::map<ProcessId, std::set<RingId>> failed_in_anchor;
  for (const auto& [p, timeline] : timelines_) {
    std::optional<ConfigId> current;
    for (const TraceEvent* e : timeline.events) {
      if (e->type == EventType::DeliverConf) current = e->config;
      if (e->type == EventType::Fail) {
        failed_in_anchor[p].insert(anchor(e->config));
        current.reset();
      }
    }
    final_config[p] = current;
  }

  for (const auto& [m, dels] : deliveries_of_) {
    const TraceEvent* any_safe = nullptr;
    for (const TraceEvent* d : dels) {
      if (d->service == Service::Safe) {
        any_safe = d;
        break;
      }
    }
    if (any_safe == nullptr) continue;

    for (const TraceEvent* d : dels) {
      const ConfigId c = d->config;
      const RingId ring = anchor(c);
      const auto& members = conf_members_.at(c);

      // 7.2: safe delivery in a regular configuration requires every member
      // of that configuration to have installed it.
      if (!c.transitional) {
        for (ProcessId q : members) {
          auto it = conf_events_.find(c);
          bool installed = false;
          if (it != conf_events_.end()) {
            for (const TraceEvent* ce : it->second) {
              if (ce->process == q) installed = true;
            }
          }
          if (!installed) {
            violation("7.2", "safe " + to_string(m) + " delivered in " + to_string(c) +
                                 " but member " + to_string(q) +
                                 " never installed it");
          }
        }
      }

      // 7.1: every member of c delivers m (in a configuration anchored to
      // the same ring) or fails while anchored to that ring.
      for (ProcessId q : members) {
        bool delivered_q = false;
        for (const TraceEvent* dq : dels) {
          if (dq->process == q && anchor(dq->config) == ring) delivered_q = true;
        }
        if (delivered_q) continue;
        if (failed_in_anchor.count(q) > 0 && failed_in_anchor.at(q).count(ring) > 0) {
          continue;  // fail_q(com_q(c))
        }
        if (!options_.quiescent) {
          // Without quiescence q may simply still be catching up.
          auto fc = final_config.find(q);
          if (fc != final_config.end() && fc->second.has_value() &&
              anchor(*fc->second) == ring) {
            continue;
          }
        }
        if (options_.quiescent) {
          violation("7.1", "safe " + to_string(m) + " delivered in " + to_string(c) +
                               " but member " + to_string(q) +
                               " neither delivered it nor failed in that ring");
        }
      }
    }
  }
  return violations_.size() - before;
}

}  // namespace evs
