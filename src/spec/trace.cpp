#include "spec/trace.hpp"

#include <algorithm>

namespace evs {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::Send: return "send";
    case EventType::Deliver: return "deliver";
    case EventType::DeliverConf: return "deliver_conf";
    case EventType::Fail: return "fail";
  }
  return "?";
}

std::string TraceEvent::describe() const {
  std::string out = std::string(to_string(type)) + "_" + evs::to_string(process);
  switch (type) {
    case EventType::Send:
    case EventType::Deliver:
      out += "(" + evs::to_string(msg) + " [" + evs::to_string(service) + " seq=" +
             std::to_string(seq) + "], " + evs::to_string(config) + ")";
      break;
    case EventType::DeliverConf: {
      out += "(" + evs::to_string(config) + " {";
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ",";
        out += evs::to_string(members[i]);
      }
      out += "})";
      break;
    }
    case EventType::Fail:
      out += "(" + evs::to_string(config) + ")";
      break;
  }
  out += " @" + std::to_string(time) + "us #" + std::to_string(pindex);
  return out;
}

void TraceLog::record(TraceEvent e) {
  e.pindex = next_pindex_[e.process]++;
  events_.push_back(std::move(e));
}

void TraceLog::clear() {
  events_.clear();
  next_pindex_.clear();
}

std::vector<const TraceEvent*> TraceLog::of_process(ProcessId p) const {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events_) {
    if (e.process == p) out.push_back(&e);
  }
  return out;
}

std::vector<ProcessId> TraceLog::processes() const {
  std::vector<ProcessId> out;
  for (const auto& e : events_) out.push_back(e.process);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string TraceLog::dump() const {
  std::string out;
  for (const auto& e : events_) {
    out += e.describe();
    out += '\n';
  }
  return out;
}

}  // namespace evs
