// Virtual synchrony trace model and legality checker (Section 4 of the
// paper: Birman's model — complete/legal histories, properties C1-C3 and
// L1-L5 — plus the primary-component properties of Section 2.2).
//
// The VS filter (vs/filter.hpp) emits these events; the checker validates
// that every filtered run is an acceptable virtually-synchronous execution,
// which is the theorem of Section 5.1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "evs/config.hpp"
#include "spec/checker.hpp"  // for Violation
#include "util/types.hpp"

namespace evs {

/// A VS identity: process id plus incarnation, packed into a ProcessId so
/// the VS trace machinery can reuse the EVS one (Section 5.2: a process
/// merged back into the primary component gets a new identifier).
/// Incarnations shift by 20 bits; raw ids stay below 2^20 in any simulation.
ProcessId vs_synth_id(ProcessId pid, std::uint32_t incarnation);
ProcessId vs_base_pid(ProcessId synth);
std::uint32_t vs_incarnation_of(ProcessId synth);

/// Logical time of a VS event: the EVS ord plus a sub-step used for the
/// per-process join views that rule 3 of the filter splits a merge into.
struct VsOrd {
  Ord base;
  std::uint32_t sub{0};

  constexpr auto operator<=>(const VsOrd&) const = default;
};

enum class VsEventType : std::uint8_t { View, Send, Deliver, Stop };

struct VsEvent {
  VsEventType type{VsEventType::View};
  ProcessId process;
  std::uint64_t pindex{0};
  SimTime time{0};

  std::uint64_t view_id{0};          ///< View/Send/Deliver: the view g^x
  std::vector<ProcessId> members;    ///< View only
  MsgId msg;                         ///< Send/Deliver
  std::optional<VsOrd> ord;          ///< View/Deliver (and Send)

  std::string describe() const;
};

class VsTraceLog {
 public:
  void record(VsEvent e);
  const std::vector<VsEvent>& events() const { return events_; }
  void clear();
  std::string dump() const;

 private:
  std::vector<VsEvent> events_;
  std::map<ProcessId, std::uint64_t> next_pindex_;
};

class VsChecker {
 public:
  struct Options {
    bool quiescent{true};
  };

  explicit VsChecker(const VsTraceLog& trace) : VsChecker(trace, Options{}) {}
  VsChecker(const VsTraceLog& trace, Options options);

  std::vector<Violation> check_all();

  std::size_t check_views();            // view consistency, L3
  std::size_t check_view_uniqueness();  // primary history Uniqueness (2.2.1)
  std::size_t check_continuity();       // primary history Continuity (2.2.2)
  std::size_t check_delivery_views();   // L4: one view per message
  std::size_t check_delivery_ords();    // L1/L2/L5: logical time sanity
  std::size_t check_atomicity();        // C3: all view members deliver or stop
  std::size_t check_self_delivery();    // C2 restricted to actual histories

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void violation(const std::string& what, const std::string& detail);

  const VsTraceLog& trace_;
  Options options_;
  std::vector<Violation> violations_;

  std::map<ProcessId, std::vector<const VsEvent*>> timelines_;
  std::map<std::uint64_t, std::vector<const VsEvent*>> view_events_;
  std::map<MsgId, std::vector<const VsEvent*>> deliveries_of_;
  std::map<MsgId, const VsEvent*> send_of_;
};

}  // namespace evs
