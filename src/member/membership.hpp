// Membership gather: agreeing on who is reachable.
//
// When a process suspects a configuration change (token loss, traffic from a
// foreign ring, a Join message, a recovery that stalls), it enters *Gather*:
// it periodically broadcasts a Join carrying its candidate set (processes it
// believes reachable) and its fail set (processes it has given up on).
// Candidate sets merge transitively; candidates that stay silent past a
// timeout move to the fail set, so the proposal shrinks monotonically and
// the algorithm terminates in bounded time — the termination property the
// paper requires of the underlying membership algorithm (Section 3).
//
// Consensus: every process in (candidates - fail_set) has sent a Join whose
// own proposal (its candidates minus its fail set) equals ours. The
// representative (smallest id) then proposes the new ring with
// ring_seq = max ring_seq anyone has seen + 1, which makes ring ids unique
// and totally ordered system-wide.
//
// A process that finds *itself* in a peer's fail set divorces that peer
// (adds it to its own fail set): the two will form separate rings and merge
// cleanly later, which breaks symmetric-distrust livelocks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "totem/messages.hpp"
#include "util/types.hpp"

namespace evs {

/// The membership a Join message proposes: candidates minus fail set, sorted.
std::vector<ProcessId> join_proposal(const JoinMsg& join);

class GatherState {
 public:
  struct Options {
    SimTime fail_timeout_us{10'000};  ///< silence before a candidate is failed
    /// Extra silence tolerated per additional candidate: the effective fail
    /// timeout is fail_timeout_us + fail_per_candidate_us * (candidates - 1).
    /// Large gathers take longer to flood joins around (more senders, more
    /// packets, longer broadcast intervals), so a flat timeout that works at
    /// N=5 spuriously fails live candidates at N=100.
    SimTime fail_per_candidate_us{0};
    /// Receives the "member.*" counters (joins_received, candidates_failed,
    /// proposal_changes). Pass the owning node's registry so the counters
    /// accumulate across gather episodes; null = uninstrumented.
    obs::MetricsRegistry* metrics{nullptr};
  };

  GatherState(ProcessId self, std::uint64_t episode,
              std::vector<ProcessId> initial_candidates, SimTime now)
      : GatherState(self, episode, std::move(initial_candidates), now, Options{}) {}
  GatherState(ProcessId self, std::uint64_t episode,
              std::vector<ProcessId> initial_candidates, SimTime now,
              Options options);

  /// Incorporate a peer's Join. Returns true if our proposal changed.
  bool on_join(const JoinMsg& join, SimTime now);

  /// Move silent candidates to the fail set. Returns true if that changed
  /// the proposal.
  bool check_timeouts(SimTime now);

  /// The Join we should broadcast right now.
  JoinMsg make_join(RingSeq own_max_ring_seq) const;

  /// Consensus reached: all live candidates proposed exactly our membership.
  /// Memoized: repeated calls between mutations are O(1), which matters when
  /// the owning node polls after every join at N=100+.
  bool consensus() const;

  /// candidates - fail_set, sorted. Always contains self. Returns a
  /// maintained cache by reference — no per-call rebuild.
  const std::vector<ProcessId>& proposed_membership() const { return membership_; }

  ProcessId representative() const { return membership_.front(); }

  std::size_t candidate_count() const { return candidates_.size(); }

  /// Effective silence tolerance given the current candidate-set size.
  SimTime effective_fail_timeout() const;

  /// Highest ring sequence number seen in any join this episode.
  RingSeq max_ring_seq_seen() const { return max_ring_seq_seen_; }

  std::uint64_t episode() const { return episode_; }

  const std::vector<ProcessId>& fail_set() const { return fail_set_; }

  /// Carry the fail set of a previous gather attempt into this one (used
  /// when gather restarts without having installed a configuration).
  void adopt_fail_set(const std::vector<ProcessId>& fails, SimTime now);

 private:
  friend struct NodeIntrospect;  // test-only state perturbation (testkit/corrupt)

  struct Candidate {
    SimTime last_heard{0};
    std::optional<JoinMsg> last_join;
    /// join_proposal(*last_join), computed once when the join arrives.
    /// consensus() compares every live candidate's proposal against ours on
    /// every poll; recomputing it there made each poll O(N^2 log N).
    std::vector<ProcessId> proposal;
  };

  void fail(ProcessId p);
  void add_candidate(ProcessId p, SimTime now);
  bool is_failed(ProcessId p) const;
  void count(const char* name, std::uint64_t n = 1);
  void membership_insert(ProcessId p);
  void membership_erase(ProcessId p);

  ProcessId self_;
  std::uint64_t episode_;
  Options options_;
  std::map<ProcessId, Candidate> candidates_;
  std::vector<ProcessId> fail_set_;    // sorted
  std::vector<ProcessId> membership_;  // sorted keys of candidates_, maintained
  RingSeq max_ring_seq_seen_{0};
  /// Memoized consensus() verdict; nullopt = dirty (invalidated on any
  /// candidate/join/fail-set mutation).
  mutable std::optional<bool> consensus_cache_;
};

}  // namespace evs
