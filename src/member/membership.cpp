#include "member/membership.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

std::vector<ProcessId> join_proposal(const JoinMsg& join) {
  std::vector<ProcessId> out;
  for (ProcessId p : join.candidates) {
    if (!std::binary_search(join.fail_set.begin(), join.fail_set.end(), p))
      out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

GatherState::GatherState(ProcessId self, std::uint64_t episode,
                         std::vector<ProcessId> initial_candidates, SimTime now,
                         Options options)
    : self_(self), episode_(episode), options_(options) {
  add_candidate(self_, now);
  for (ProcessId p : initial_candidates) add_candidate(p, now);
}

void GatherState::count(const char* name, std::uint64_t n) {
  if (options_.metrics != nullptr) options_.metrics->counter(name).inc(n);
}

void GatherState::membership_insert(ProcessId p) {
  auto it = std::lower_bound(membership_.begin(), membership_.end(), p);
  if (it == membership_.end() || *it != p) membership_.insert(it, p);
}

void GatherState::membership_erase(ProcessId p) {
  auto it = std::lower_bound(membership_.begin(), membership_.end(), p);
  if (it != membership_.end() && *it == p) membership_.erase(it);
}

void GatherState::fail(ProcessId p) {
  if (p == self_) return;
  if (!std::binary_search(fail_set_.begin(), fail_set_.end(), p)) {
    fail_set_.insert(std::upper_bound(fail_set_.begin(), fail_set_.end(), p), p);
    count("member.candidates_failed");
    consensus_cache_.reset();
  }
  if (candidates_.erase(p) > 0) {
    membership_erase(p);
    consensus_cache_.reset();
  }
}

bool GatherState::is_failed(ProcessId p) const {
  return std::binary_search(fail_set_.begin(), fail_set_.end(), p);
}

void GatherState::add_candidate(ProcessId p, SimTime now) {
  if (is_failed(p)) return;
  auto [it, inserted] = candidates_.try_emplace(p);
  if (inserted) {
    it->second.last_heard = now;
    membership_insert(p);
    consensus_cache_.reset();
  }
}

void GatherState::adopt_fail_set(const std::vector<ProcessId>& fails, SimTime now) {
  (void)now;
  for (ProcessId p : fails) fail(p);
}

SimTime GatherState::effective_fail_timeout() const {
  const std::size_t n = candidates_.empty() ? 1 : candidates_.size();
  return options_.fail_timeout_us +
         options_.fail_per_candidate_us * static_cast<SimTime>(n - 1);
}

bool GatherState::on_join(const JoinMsg& join, SimTime now) {
  // Episode regression guard: the network may replay a duplicated join from
  // an earlier gather episode of the same peer (episodes are monotone per
  // incarnation). Acting on it could resurrect candidates or fail-set
  // entries the peer has since retracted.
  if (auto it = candidates_.find(join.sender);
      it != candidates_.end() && it->second.last_join.has_value() &&
      it->second.last_join->episode > join.episode) {
    return false;
  }
  count("member.joins_received");

  const std::vector<ProcessId> before = membership_;
  max_ring_seq_seen_ = std::max(max_ring_seq_seen_, join.max_ring_seq);

  const bool divorced_by_peer =
      std::binary_search(join.fail_set.begin(), join.fail_set.end(), self_);
  if (divorced_by_peer) {
    // The peer gave up on us; reciprocate so both sides converge on
    // disjoint memberships instead of waiting on each other forever.
    fail(join.sender);
    const bool changed = membership_ != before;
    if (changed) count("member.proposal_changes");
    return changed;
  }

  add_candidate(join.sender, now);
  if (auto it = candidates_.find(join.sender); it != candidates_.end()) {
    it->second.last_heard = now;
    it->second.last_join = join;
    it->second.proposal = join_proposal(join);
    consensus_cache_.reset();
  }
  for (ProcessId p : join.candidates) add_candidate(p, now);
  for (ProcessId p : join.fail_set) fail(p);
  const bool changed = membership_ != before;
  if (changed) count("member.proposal_changes");
  return changed;
}

bool GatherState::check_timeouts(SimTime now) {
  const SimTime timeout = effective_fail_timeout();
  std::vector<ProcessId> stale;
  for (const auto& [p, c] : candidates_) {
    if (p == self_) continue;
    if (now >= c.last_heard + timeout) stale.push_back(p);
  }
  for (ProcessId p : stale) {
    EVS_DEBUG("member", "%s fails silent candidate %s", to_string(self_).c_str(),
              to_string(p).c_str());
    fail(p);
  }
  if (!stale.empty()) count("member.proposal_changes");
  return !stale.empty();
}

JoinMsg GatherState::make_join(RingSeq own_max_ring_seq) const {
  JoinMsg join;
  join.sender = self_;
  join.episode = episode_;
  join.candidates = membership_;
  join.fail_set = fail_set_;
  join.max_ring_seq = std::max(own_max_ring_seq, max_ring_seq_seen_);
  return join;
}

bool GatherState::consensus() const {
  if (consensus_cache_.has_value()) return *consensus_cache_;
  bool ok = true;
  for (ProcessId p : membership_) {
    if (p == self_) continue;
    auto it = candidates_.find(p);
    EVS_ASSERT(it != candidates_.end());
    if (!it->second.last_join.has_value() || it->second.proposal != membership_) {
      ok = false;
      break;
    }
  }
  consensus_cache_ = ok;
  return ok;
}

}  // namespace evs
