// ATM banking — the paper's second motivating application (Section 1):
// "An ATM machine, operating in a fully connected system, records each
// transaction in its database, checking that cumulative withdrawals do not
// exceed the account balance. When operating in a non-primary component,
// however, it consults a small database to authorize a withdrawal without
// checking for cumulative withdrawals at different locations, and delays
// posting the transaction until the system becomes reconnected."
//
// Each ATM runs an AtmAgent on an EvsNode. Transactions (deposit/withdraw)
// are broadcast with safe delivery and applied in the shared total order.
// While the configuration is full, withdrawals are authorized against the
// replicated balance. While partitioned, a withdrawal is authorized by the
// offline limit alone and the applied transaction is held *unposted*; on
// every configuration change the unposted backlog is rebroadcast, so after
// remerge the components exchange exactly their partition-era deltas
// (duplicate applications are suppressed by transaction id). A transaction
// becomes *posted* once it has been delivered in a full configuration.
// Cumulative offline withdrawals can overdraw an account — the example's
// accepted risk — and the overdraft is visible deterministically after the
// merge.
//
// The account database, the applied-transaction set and the unposted
// backlog live in the node's stable storage: an ATM that crashes and
// recovers resumes with its database intact (the paper's recovery model).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "evs/node.hpp"
#include "storage/stable_store.hpp"

namespace evs::apps {

using AccountId = std::uint32_t;

class AtmAgent {
 public:
  struct Options {
    std::size_t universe{0};        ///< total number of ATMs
    std::int64_t offline_limit{200};  ///< per-withdrawal cap while partitioned
  };

  struct Stats {
    std::uint32_t applied{0};
    std::uint32_t denied{0};
    std::uint32_t offline_authorized{0};
    std::uint32_t reposts_sent{0};
    std::uint32_t posted{0};
  };

  AtmAgent(EvsNode& node, StableStore& store, Options options);

  /// Open an account with an initial balance (must be done in the full
  /// configuration to be globally visible; it is an ordinary transaction).
  MsgId open_account(AccountId account, std::int64_t initial_balance);

  MsgId deposit(AccountId account, std::int64_t amount);
  MsgId withdraw(AccountId account, std::int64_t amount);

  std::int64_t balance(AccountId account) const;
  bool overdrawn(AccountId account) const { return balance(account) < 0; }

  bool in_full_configuration() const;
  std::size_t unposted_count() const { return unposted_.size(); }
  const Stats& stats() const { return stats_; }
  const std::map<MsgId, bool>& outcomes() const { return outcomes_; }

 private:
  enum class Op : std::uint8_t { Open = 0, Deposit = 1, Withdraw = 2 };

  struct Txn {
    MsgId id;
    Op op;
    AccountId account{0};
    std::int64_t amount{0};
  };

  MsgId submit(Op op, AccountId account, std::int64_t amount);
  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);
  void apply(const Txn& txn);
  void persist();
  void load();

  static std::vector<std::uint8_t> encode_txn(const Txn& txn, const MsgId& id);

  EvsNode& node_;
  StableStore& store_;
  Options options_;

  std::map<AccountId, std::int64_t> accounts_;
  std::set<MsgId> applied_;
  std::map<MsgId, Txn> unposted_;  ///< applied but not yet seen in a full config
  std::map<MsgId, bool> outcomes_;
  Stats stats_;
};

}  // namespace evs::apps
