#include "apps/lock_service.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs::apps {
namespace {

constexpr std::uint8_t kAcquire = 0;
constexpr std::uint8_t kRelease = 1;
constexpr std::uint8_t kSnapshot = 2;

}  // namespace

LockService::LockService(VsNode& node) : node_(node) {
  node_.set_on_deliver([this](const VsDelivery& d) { on_deliver(d); });
  node_.set_on_view_change([this](const VsView& v) { on_view(v); });
}

bool LockService::acquire(LockId lock) {
  wire::Writer w;
  w.u8(kAcquire);
  w.u32(lock);
  // Safe delivery: a grant decision must never be visible at one member and
  // lost at another across a configuration change.
  if (!node_.send(w.take(), Service::Safe).ok()) {
    ++stats_.rejected_blocked;
    return false;
  }
  return true;
}

bool LockService::release(LockId lock) {
  if (!holds(lock)) return false;
  wire::Writer w;
  w.u8(kRelease);
  w.u32(lock);
  return node_.send(w.take(), Service::Safe).ok();
}

std::optional<ProcessId> LockService::holder(LockId lock) const {
  auto it = queues_.find(lock);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::size_t LockService::queue_length(LockId lock) const {
  auto it = queues_.find(lock);
  return it == queues_.end() ? 0 : it->second.size();
}

bool LockService::holds(LockId lock) const {
  auto h = holder(lock);
  return h.has_value() && *h == node_.vs_identity();
}

void LockService::grant_next(LockId lock) {
  auto it = queues_.find(lock);
  if (it == queues_.end() || it->second.empty()) return;
  ++stats_.granted;
  if (it->second.front() == node_.vs_identity() && grant_handler_) {
    grant_handler_(lock);
  }
}

void LockService::apply_op(std::uint8_t op, LockId lock, ProcessId who) {
  auto& queue = queues_[lock];
  if (op == kAcquire) {
    // Duplicate requests from the same identity are idempotent.
    if (std::find(queue.begin(), queue.end(), who) != queue.end()) return;
    queue.push_back(who);
    ++stats_.queued;
    if (queue.size() == 1) grant_next(lock);
  } else {
    EVS_ASSERT(op == kRelease);
    if (queue.empty() || queue.front() != who) return;  // stale release
    queue.erase(queue.begin());
    ++stats_.released;
    grant_next(lock);
  }
}

void LockService::on_deliver(const VsDelivery& d) {
  wire::Reader r(d.payload);
  const std::uint8_t op = r.u8();

  if (op == kSnapshot) {
    const std::uint64_t snap_view = r.u64();
    const std::uint32_t n_locks = r.u32();
    if (synced_ || snap_view != view_id_) {
      // Our own snapshot coming back, or a stale one from a superseded view.
      for (std::uint32_t i = 0; i < n_locks; ++i) {
        (void)r.u32();
        (void)r.pid_vec();
      }
      EVS_ASSERT(r.done());
      return;
    }
    queues_.clear();
    for (std::uint32_t i = 0; i < n_locks; ++i) {
      const LockId lock = r.u32();
      queues_[lock] = r.pid_vec();
    }
    EVS_ASSERT(r.done());
    synced_ = true;
    ++stats_.snapshots_adopted;
    // Replay the operations that were ordered after the snapshot; grants
    // fire through the normal path.
    std::vector<BufferedOp> buffered;
    buffered.swap(buffered_);
    for (const BufferedOp& b : buffered) apply_op(b.op, b.lock, b.who);
    return;
  }

  const LockId lock = r.u32();
  EVS_ASSERT(r.done());
  if (!synced_) {
    buffered_.push_back(BufferedOp{op, lock, d.vs_sender});
    return;
  }
  apply_op(op, lock, d.vs_sender);
}

void LockService::on_view(const VsView& view) {
  view_id_ = view.id;
  // Drop departed processes from every queue; if a holder left, the next
  // waiter is granted. Deterministic: every member applies the same view.
  for (auto& [lock, queue] : queues_) {
    const bool holder_left =
        !queue.empty() &&
        !std::binary_search(view.members.begin(), view.members.end(), queue.front());
    const std::size_t before = queue.size();
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [&](ProcessId p) {
                                 return !std::binary_search(view.members.begin(),
                                                            view.members.end(), p);
                               }),
                queue.end());
    stats_.revoked_on_failure += before - queue.size();
    if (holder_left) grant_next(lock);
  }

  // State transfer: the smallest identity in the view multicasts the table
  // as of this view change; everyone else buffers until it arrives.
  buffered_.clear();
  if (view.members.front() == node_.vs_identity()) {
    wire::Writer w;
    w.u8(kSnapshot);
    w.u64(view.id);
    w.u32(static_cast<std::uint32_t>(queues_.size()));
    for (const auto& [lock, queue] : queues_) {
      w.u32(lock);
      w.pid_vec(queue);
    }
    // The filter accepts sends during its own view callback (the node is
    // in the primary by construction here).
    (void)node_.send(w.take(), Service::Safe);
    ++stats_.snapshots_sent;
    synced_ = true;
  } else {
    synced_ = false;
  }
}

}  // namespace evs::apps
