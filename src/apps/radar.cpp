#include "apps/radar.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs::apps {
namespace {

std::uint64_t pack_double(double v) { return std::bit_cast<std::uint64_t>(v); }
double unpack_double(std::uint64_t v) { return std::bit_cast<double>(v); }

}  // namespace

RadarAgent::RadarAgent(EvsNode& node) : node_(node) {
  node_.set_on_deliver([this](const EvsNode::Delivery& d) { on_deliver(d); });
  node_.set_on_config_change([this](const Configuration& c) { on_config(c); });
}

MsgId RadarAgent::publish(double x, double y, double quality) {
  wire::Writer w;
  w.u64(pack_double(x));
  w.u64(pack_double(y));
  w.u64(pack_double(quality));
  w.u64(++sequence_);
  ++stats_.published;
  return node_.send(Service::Agreed, w.take()).value();
}

void RadarAgent::on_deliver(const EvsNode::Delivery& d) {
  wire::Reader r(d.payload);
  RadarReading reading;
  reading.sensor = d.id.sender;
  reading.x = unpack_double(r.u64());
  reading.y = unpack_double(r.u64());
  reading.quality = unpack_double(r.u64());
  reading.sequence = r.u64();
  EVS_ASSERT(r.done());
  auto& slot = readings_[reading.sensor];
  if (reading.sequence >= slot.sequence) slot = reading;
  ++stats_.fused;

  const auto current = best();
  if (current.has_value() && current->sensor != last_best_) {
    last_best_ = current->sensor;
    ++stats_.best_changes;
  }
}

void RadarAgent::on_config(const Configuration& config) {
  if (config.id.transitional) return;
  // Prune sensors outside the component: their data can no longer refresh
  // and must not shadow live (if lower quality) local sensors.
  for (auto it = readings_.begin(); it != readings_.end();) {
    if (!config.contains(it->first)) {
      it = readings_.erase(it);
      ++stats_.pruned_sensors;
    } else {
      ++it;
    }
  }
}

std::optional<RadarReading> RadarAgent::best() const {
  std::optional<RadarReading> out;
  for (const auto& [sensor, reading] : readings_) {
    if (!node_.config().contains(sensor)) continue;
    if (!out.has_value() || reading.quality > out->quality) out = reading;
  }
  return out;
}

}  // namespace evs::apps
