#include "apps/airline.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs::apps {
namespace {

constexpr std::uint8_t kSell = 0;
constexpr std::uint8_t kSync = 1;

}  // namespace

AirlineAgent::AirlineAgent(EvsNode& node, Options options)
    : node_(node), options_(options) {
  EVS_ASSERT(options_.universe > 0);
  free_at_config_ = options_.capacity;
  config_size_ = 1;
  node_.set_on_deliver([this](const EvsNode::Delivery& d) { on_deliver(d); });
  node_.set_on_config_change([this](const Configuration& c) { on_config(c); });
}

MsgId AirlineAgent::request_sale(std::uint32_t seats) {
  wire::Writer w;
  w.u8(kSell);
  w.u32(seats);
  // Agreed delivery suffices: the decision is a deterministic function of
  // the shared total order, so all members conclude identically.
  return node_.send(Service::Agreed, w.take()).value();
}

std::uint32_t AirlineAgent::sold() const {
  std::uint32_t total = 0;
  for (const auto& [id, seats] : ledger_) total += seats;
  return total;
}

std::map<ProcessId, std::uint32_t> AirlineAgent::counters() const {
  std::map<ProcessId, std::uint32_t> out;
  for (const auto& [id, seats] : ledger_) out[id.sender] += seats;
  return out;
}

bool AirlineAgent::in_full_configuration() const {
  return node_.config().members.size() == options_.universe;
}

std::uint32_t AirlineAgent::partition_allowance() const {
  if (in_full_configuration()) return remaining();
  const double share =
      static_cast<double>(config_size_) / static_cast<double>(options_.universe);
  const auto quota = static_cast<std::uint32_t>(
      static_cast<double>(free_at_config_) * share * options_.risk_factor);
  return sold_in_config_ >= quota ? 0 : quota - sold_in_config_;
}

void AirlineAgent::record_sale(const MsgId& id, std::uint32_t seats) {
  // Union semantics: recording a sale twice (delivery plus a later sync,
  // or two syncs) is a no-op.
  ledger_.emplace(id, seats);
}

void AirlineAgent::on_config(const Configuration& config) {
  if (config.id.transitional) return;
  free_at_config_ = remaining();
  sold_in_config_ = 0;
  config_size_ = config.members.size();
  if (config.members.size() > 1) {
    // Carry the ledger across the merge: broadcast a state sync. Full-state
    // sync keeps the example simple; a production system would exchange
    // ledger digests and ship deltas.
    wire::Writer w;
    w.u8(kSync);
    w.u32(static_cast<std::uint32_t>(ledger_.size()));
    for (const auto& [id, seats] : ledger_) {
      encode(w, id);
      w.u32(seats);
    }
    node_.send(Service::Agreed, w.take());
  }
}

void AirlineAgent::on_deliver(const EvsNode::Delivery& d) {
  wire::Reader r(d.payload);
  const std::uint8_t tag = r.u8();
  if (tag == kSync) {
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const MsgId id = decode_msg_id(r);
      const std::uint32_t seats = r.u32();
      record_sale(id, seats);  // set union
    }
    EVS_ASSERT(r.done());
    ++stats_.syncs_applied;
    return;
  }
  EVS_ASSERT(tag == kSell);
  const std::uint32_t seats = r.u32();
  EVS_ASSERT(r.done());

  // Decide against the configuration the request is DELIVERED in: a sale
  // delivered in a transitional configuration of the full ring reached
  // only the transitional members and must be judged by the partition
  // heuristic, not the full-capacity rule.
  const bool full_delivery = !d.config.id.transitional &&
                             d.config.members.size() == options_.universe;
  const bool accept =
      full_delivery ? seats <= remaining() : seats <= partition_allowance();
  if (accept) {
    record_sale(d.id, seats);
    sold_in_config_ += seats;
    ++stats_.accepted;
    if (!full_delivery) stats_.sold_while_partitioned += seats;
  } else {
    ++stats_.rejected;
  }
  outcomes_[d.id] = accept;
}

}  // namespace evs::apps
