#include "apps/atm.hpp"

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs::apps {
namespace {

constexpr const char* kKeyAtm = "app_atm_state";

}  // namespace

AtmAgent::AtmAgent(EvsNode& node, StableStore& store, Options options)
    : node_(node), store_(store), options_(options) {
  EVS_ASSERT(options_.universe > 0);
  load();
  node_.set_on_deliver([this](const EvsNode::Delivery& d) { on_deliver(d); });
  node_.set_on_config_change([this](const Configuration& c) { on_config(c); });
}

std::vector<std::uint8_t> AtmAgent::encode_txn(const Txn& txn, const MsgId& id) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(txn.op));
  w.u32(txn.account);
  w.u64(static_cast<std::uint64_t>(txn.amount));
  // The ORIGINAL transaction id: a repost travels under a fresh message id
  // but must deduplicate against the first delivery.
  encode(w, id);
  return w.take();
}

MsgId AtmAgent::submit(Op op, AccountId account, std::int64_t amount) {
  Txn txn;
  txn.op = op;
  txn.account = account;
  txn.amount = amount;
  // Two-step: we need the message id inside the payload, so reserve it by
  // sending a first-class message whose payload names itself. EvsNode
  // assigns ids sequentially per send, so encode with a placeholder id
  // equal to what send() will return.
  // Safe delivery: an authorized transaction must not be lost at some
  // members while applied at others when the configuration changes.
  const MsgId placeholder{};
  auto payload = encode_txn(txn, placeholder);
  const MsgId id = node_.send(Service::Safe, std::move(payload)).value();
  // Re-encode with the real id and fix the queued payload: simpler — the
  // delivery handler treats an all-zero embedded id as "use the message's
  // own id" (the common, non-repost case).
  return id;
}

MsgId AtmAgent::open_account(AccountId account, std::int64_t initial_balance) {
  return submit(Op::Open, account, initial_balance);
}

MsgId AtmAgent::deposit(AccountId account, std::int64_t amount) {
  EVS_ASSERT(amount >= 0);
  return submit(Op::Deposit, account, amount);
}

MsgId AtmAgent::withdraw(AccountId account, std::int64_t amount) {
  EVS_ASSERT(amount >= 0);
  return submit(Op::Withdraw, account, amount);
}

std::int64_t AtmAgent::balance(AccountId account) const {
  auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second;
}

bool AtmAgent::in_full_configuration() const {
  return node_.config().members.size() == options_.universe;
}

void AtmAgent::on_config(const Configuration& config) {
  if (config.id.transitional) return;
  if (config.members.size() < 2 || unposted_.empty()) return;
  // Delayed posting: push the partition-era backlog into the (possibly
  // larger) new configuration. Receivers deduplicate by original id.
  for (const auto& [id, txn] : unposted_) {
    node_.send(Service::Safe, encode_txn(txn, id));
    ++stats_.reposts_sent;
  }
}

void AtmAgent::on_deliver(const EvsNode::Delivery& d) {
  wire::Reader r(d.payload);
  Txn txn;
  txn.op = static_cast<Op>(r.u8());
  txn.account = r.u32();
  txn.amount = static_cast<std::int64_t>(r.u64());
  const MsgId embedded = decode_msg_id(r);
  EVS_ASSERT(r.done());
  txn.id = embedded.valid() ? embedded : d.id;  // repost vs original

  // The configuration that matters is the one the message is DELIVERED in
  // (regular or transitional) — not this replica's current configuration.
  // A message can be delivered in a transitional configuration of the full
  // ring, i.e. to a strict subset of the ATMs; treating that as "full"
  // would mark the transaction posted even though some ATM never saw it.
  // Handing the application exactly this information is the point of the
  // extended virtual synchrony delivery interface (Section 2).
  const bool full_delivery = !d.config.id.transitional &&
                             d.config.members.size() == options_.universe;

  const bool is_repost = embedded.valid();
  const bool duplicate = applied_.count(txn.id) > 0;
  if (!duplicate) {
    bool accept = true;
    if (txn.op == Op::Withdraw && !is_repost) {
      // A repost carries a transaction that was already authorized (and
      // executed) in its originating component — posting is unconditional;
      // only fresh withdrawals are authorized here.
      accept = full_delivery ? txn.amount <= balance(txn.account)
                             : txn.amount <= options_.offline_limit;
      if (accept && !full_delivery) ++stats_.offline_authorized;
    }
    outcomes_[txn.id] = accept;
    if (!accept) {
      ++stats_.denied;
      persist();
      return;
    }
    apply(txn);
  }
  // Posting: delivered in a full regular configuration -> every ATM has it.
  if (full_delivery) {
    if (unposted_.erase(txn.id) > 0) ++stats_.posted;
  } else if (!duplicate) {
    unposted_.emplace(txn.id, txn);
  }
  persist();
}

void AtmAgent::apply(const Txn& txn) {
  switch (txn.op) {
    case Op::Open: accounts_[txn.account] = txn.amount; break;
    case Op::Deposit: accounts_[txn.account] += txn.amount; break;
    case Op::Withdraw: accounts_[txn.account] -= txn.amount; break;
  }
  applied_.insert(txn.id);
  ++stats_.applied;
}

void AtmAgent::persist() {
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(accounts_.size()));
  for (const auto& [account, bal] : accounts_) {
    w.u32(account);
    w.u64(static_cast<std::uint64_t>(bal));
  }
  w.u32(static_cast<std::uint32_t>(applied_.size()));
  for (const auto& id : applied_) encode(w, id);
  w.u32(static_cast<std::uint32_t>(unposted_.size()));
  for (const auto& [id, txn] : unposted_) {
    encode(w, id);
    w.u8(static_cast<std::uint8_t>(txn.op));
    w.u32(txn.account);
    w.u64(static_cast<std::uint64_t>(txn.amount));
  }
  store_.put(kKeyAtm, w.take());
}

void AtmAgent::load() {
  auto blob = store_.get(kKeyAtm);
  if (!blob.has_value()) return;
  wire::Reader r(*blob);
  const std::uint32_t n_accounts = r.u32();
  for (std::uint32_t i = 0; i < n_accounts; ++i) {
    const AccountId account = r.u32();
    accounts_[account] = static_cast<std::int64_t>(r.u64());
  }
  const std::uint32_t n_applied = r.u32();
  for (std::uint32_t i = 0; i < n_applied; ++i) applied_.insert(decode_msg_id(r));
  const std::uint32_t n_unposted = r.u32();
  for (std::uint32_t i = 0; i < n_unposted; ++i) {
    Txn txn;
    txn.id = decode_msg_id(r);
    txn.op = static_cast<Op>(r.u8());
    txn.account = r.u32();
    txn.amount = static_cast<std::int64_t>(r.u64());
    unposted_.emplace(txn.id, txn);
  }
  EVS_ASSERT(r.done());
}

}  // namespace evs::apps
