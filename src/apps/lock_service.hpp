// Distributed lock service on the virtual synchrony layer.
//
// A classic Isis-style application, included to demonstrate the VS filter
// as an application substrate (Section 5): lock requests and releases are
// multicast in the primary component and applied in view order, so every
// member's lock table is identical. Members outside the primary are
// blocked — they can neither acquire nor observe locks, which is exactly
// the consistency-over-availability trade the primary-partition model
// makes (and the EVS applications in apps/airline|atm|radar avoid).
//
// Failure handling is view-driven: when a view change removes a process,
// every surviving member drops the locks the departed holder owned —
// deterministically, because all members see the same view sequence.
//
// State transfer (the canonical VS joining pattern): on every view, the
// member with the smallest identity multicasts a snapshot of the lock
// table as of the view change; the other members buffer subsequent
// operations until the snapshot arrives, then adopt it and replay the
// buffer. Because the snapshot and the operations travel in one total
// order, every member — joiners included — converges on the identical
// table without any pairwise synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "vs/filter.hpp"

namespace evs::apps {

using LockId = std::uint32_t;

class LockService {
 public:
  struct Stats {
    std::uint64_t granted{0};
    std::uint64_t queued{0};
    std::uint64_t released{0};
    std::uint64_t revoked_on_failure{0};
    std::uint64_t rejected_blocked{0};
    std::uint64_t snapshots_sent{0};
    std::uint64_t snapshots_adopted{0};
  };

  /// Called when this process's own request is granted.
  using GrantHandler = std::function<void(LockId)>;

  explicit LockService(VsNode& node);

  /// Request the lock; returns false immediately if this process is blocked
  /// (not in the primary component). Otherwise the request enters the
  /// totally ordered queue and the grant arrives via the handler.
  bool acquire(LockId lock);

  /// Release a held lock (no-op unless this process holds it).
  bool release(LockId lock);

  void set_grant_handler(GrantHandler h) { grant_handler_ = std::move(h); }

  /// Current holder of a lock, if any (VS identity).
  std::optional<ProcessId> holder(LockId lock) const;

  /// Queue length including the holder.
  std::size_t queue_length(LockId lock) const;

  bool holds(LockId lock) const;

  /// True once this member's table reflects the current view's snapshot
  /// (immediately for the snapshot sender, after adoption for the rest).
  bool synchronized() const { return synced_; }

  const Stats& stats() const { return stats_; }

 private:
  void on_deliver(const VsDelivery& d);
  void on_view(const VsView& view);
  void apply_op(std::uint8_t op, LockId lock, ProcessId who);
  void grant_next(LockId lock);

  VsNode& node_;
  // Per lock: FIFO of VS identities; front = holder.
  std::map<LockId, std::vector<ProcessId>> queues_;
  GrantHandler grant_handler_;
  Stats stats_;

  // State transfer.
  bool synced_{false};
  std::uint64_t view_id_{0};
  struct BufferedOp {
    std::uint8_t op;
    LockId lock;
    ProcessId who;
  };
  std::vector<BufferedOp> buffered_;
};

}  // namespace evs::apps
