// Sharded KV service node: the per-process agent of the multi-ring KV
// store. One EvsNode per LOCALLY REPLICATED shard (each shard is an
// independent EVS group with its own total order); a consistent-hash
// ShardRouter maps keys -> shard and shard -> replica group.
//
// Write path: put/del ops are encoded and submitted to the owning shard's
// ring with SAFE delivery via send_batch — a write is applied only once
// every member of the shard's configuration has it, and all replicas apply
// the identical per-shard sequence (per-key linearizability follows: a
// key lives in exactly one shard, and that shard's order is total).
//
// Read path: served locally by any IN-PRIMARY replica — the replica's
// current shard configuration must contain a majority of the shard's
// assigned replica group; otherwise the read is refused
// (Errc::blocked_not_primary) rather than answered from a minority that
// may be missing committed writes.
//
// Cross-shard semantics: none, by design. Shards compose because they
// never share ordering state — a partition that stalls shard A's ring
// cannot stall shard B's (DESIGN.md "Sharded dispatch").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evs/node.hpp"
#include "obs/metrics.hpp"
#include "shard/kv_store.hpp"
#include "shard/router.hpp"
#include "util/status.hpp"

namespace evs::apps {

class KvShardedNode {
 public:
  struct Stats {
    std::uint64_t puts{0};          ///< write ops accepted into a shard ring
    std::uint64_t gets{0};          ///< reads served (hit or miss)
    std::uint64_t get_misses{0};    ///< reads served with no value
    std::uint64_t applied{0};       ///< ops applied from shard total orders
    std::uint64_t rejected_not_replica{0};  ///< op for a shard not held here
    std::uint64_t rejected_backpressure{0};
    std::uint64_t reads_blocked{0};   ///< refused: shard replica not in primary
    std::uint64_t writes_blocked{0};  ///< refused: shard replica not in primary
  };

  /// `router` must outlive the node and is shared (const) by every process;
  /// the harness updates it on membership change and re-attaches shards.
  KvShardedNode(ProcessId self, const shard::ShardRouter& router);

  /// Wire a locally replicated shard's ring into this agent. Installs the
  /// shard node's batch delivery handler; call once per (agent, shard).
  void attach_shard(shard::ShardId shard, EvsNode& node);

  bool has_shard(shard::ShardId shard) const;
  std::vector<shard::ShardId> local_shards() const;

  /// Route and submit one write. Fails with invalid_argument when this
  /// process does not replicate the key's shard (the caller routes to a
  /// replica), or backpressure/not_running from the shard ring.
  Status put(std::string_view key, std::string_view value);
  Status del(std::string_view key);

  /// Submit a batch of writes, grouped by shard, one send_batch per shard
  /// (all-or-nothing PER SHARD: a rejected shard group leaves other shard
  /// groups submitted). Returns the first error, having tried every group.
  Status put_batch(
      const std::vector<std::pair<std::string, std::string>>& items);

  /// Local in-primary read. blocked_not_primary when this replica's shard
  /// configuration holds a minority of the assigned replica group;
  /// invalid_argument when the shard is not replicated here.
  Expected<std::optional<std::string>> get(std::string_view key);

  /// True when the local replica of `shard` is in primary: its current
  /// regular configuration contains a majority of the router's assigned
  /// replica group for the shard.
  bool in_primary(shard::ShardId shard) const;

  Stats stats() const;
  const shard::KvStore* store(shard::ShardId shard) const;

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct LocalShard {
    EvsNode* node{nullptr};
    shard::KvStore store;
  };

  Status submit(shard::ShardId shard,
                std::vector<std::vector<std::uint8_t>> payloads);
  void apply_locked(shard::ShardId shard,
                    std::span<const std::uint8_t> payload);
  bool in_primary_locked(shard::ShardId shard, const LocalShard& ls) const;
  LocalShard* find(shard::ShardId shard);
  const LocalShard* find(shard::ShardId shard) const;

  ProcessId self_;
  const shard::ShardRouter& router_;
  std::map<shard::ShardId, LocalShard> shards_;

  // The sim harness is single-threaded; the live harness applies each
  // shard's deliveries on that shard transport's loop thread while reads
  // come from callers — one agent-wide mutex keeps the stores coherent.
  mutable std::mutex mu_;

  obs::MetricsRegistry metrics_;
  struct Met {
    explicit Met(obs::MetricsRegistry& r);
    obs::Counter& puts;
    obs::Counter& gets;
    obs::Counter& get_misses;
    obs::Counter& applied;
    obs::Counter& rejected_not_replica;
    obs::Counter& rejected_backpressure;
    obs::Counter& reads_blocked;
    obs::Counter& writes_blocked;
    obs::Counter& rejected_decode;
    obs::Gauge& local_shards;
    obs::Histogram& put_batch_size;
  } met_;
};

}  // namespace evs::apps
