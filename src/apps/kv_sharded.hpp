// Sharded KV service node: the per-process agent of the multi-ring KV
// store. One EvsNode per LOCALLY REPLICATED shard (each shard is an
// independent EVS group with its own total order); a consistent-hash
// ShardRouter maps keys -> shard and shard -> replica group.
//
// Write path: put/del ops are encoded and submitted to the owning shard's
// ring with SAFE delivery via send_batch — a write is applied only once
// every member of the shard's configuration has it, and all replicas apply
// the identical per-shard sequence (per-key linearizability follows: a
// key lives in exactly one shard, and that shard's order is total).
//
// Read path: served locally by any SERVING replica — in primary (the
// replica's current shard configuration contains a majority of the shard's
// assigned replica group) AND caught up (not mid state transfer). A
// minority replica refuses with Errc::blocked_not_primary; a re-merged
// replica still reconciling refuses with Errc::catching_up. get_stale()
// opts out of the second gate for callers that prefer availability.
//
// Catch-up itself — digests, chunked delta transfer, anti-entropy repair —
// is the per-shard shard::TransferEngine's job; this agent wires it to the
// ring (routes the transfer op range to it before the store ever decodes
// anything) and drives its timer.
//
// Cross-shard semantics: none, by design. Shards compose because they
// never share ordering state — a partition that stalls shard A's ring
// cannot stall shard B's (DESIGN.md "Sharded dispatch").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "evs/node.hpp"
#include "obs/metrics.hpp"
#include "shard/kv_store.hpp"
#include "shard/router.hpp"
#include "shard/transfer.hpp"
#include "util/status.hpp"

namespace evs::apps {

class KvShardedNode {
 public:
  struct Stats {
    std::uint64_t puts{0};          ///< write ops accepted into a shard ring
    std::uint64_t gets{0};          ///< reads served (hit or miss)
    std::uint64_t get_misses{0};    ///< reads served with no value
    std::uint64_t applied{0};       ///< ops applied from shard total orders
    std::uint64_t rejected_not_replica{0};  ///< op for a shard not held here
    std::uint64_t rejected_backpressure{0};
    std::uint64_t reads_blocked{0};   ///< refused: shard replica not in primary
    std::uint64_t writes_blocked{0};  ///< refused: shard replica not in primary
    std::uint64_t reads_catching_up{0};  ///< refused: replica mid catch-up
    std::uint64_t stale_reads{0};        ///< get_stale() reads served
  };

  /// Per-shard outcome of put_batch: `ops` writes routed to `shard` and
  /// submitted as one all-or-nothing send_batch, with that group's Status.
  struct ShardPutOutcome {
    shard::ShardId shard{0};
    std::size_t ops{0};
    Status status;
  };

  /// put_batch is all-or-nothing PER SHARD, so a partial failure is a list
  /// of per-shard verdicts, not a single Status: the caller must know WHICH
  /// groups were accepted (they will be applied) and which were refused
  /// (they must be retried or surfaced), or a mixed batch silently loses
  /// its rejected half.
  struct PutBatchResult {
    std::vector<ShardPutOutcome> shards;

    bool all_ok() const {
      for (const auto& s : shards) {
        if (!s.status.ok()) return false;
      }
      return true;
    }
    /// First failing shard's status; ok when every group was accepted.
    Status first_error() const {
      for (const auto& s : shards) {
        if (!s.status.ok()) return s.status;
      }
      return Status::ok_status();
    }
  };

  /// `router` must outlive the node and is shared (const) by every process;
  /// the harness updates it on membership change and re-attaches shards.
  /// `transfer` tunes the per-shard state-transfer engines.
  KvShardedNode(ProcessId self, const shard::ShardRouter& router,
                shard::TransferConfig transfer = {});

  /// Wire a locally replicated shard's ring into this agent: delivery
  /// handlers, the configuration observer feeding the shard's transfer
  /// engine, and the engine's tick timer. Call once per (agent, shard);
  /// re-attaching after a harness remap is allowed and re-syncs the engine
  /// to the node's current configuration.
  void attach_shard(shard::ShardId shard, EvsNode& node);

  bool has_shard(shard::ShardId shard) const;
  std::vector<shard::ShardId> local_shards() const;

  /// Route and submit one write. Fails with invalid_argument when this
  /// process does not replicate the key's shard (the caller routes to a
  /// replica), payload_too_large above the transfer-safe size cap, or
  /// backpressure/not_running from the shard ring. Writes are accepted
  /// while catching up (they are totally ordered like anyone else's).
  Status put(std::string_view key, std::string_view value);
  Status del(std::string_view key);

  /// Submit a batch of writes, grouped by shard, one send_batch per shard.
  /// Every group is attempted; the result reports each group's outcome.
  PutBatchResult put_batch(
      const std::vector<std::pair<std::string, std::string>>& items);

  /// Local serving read. blocked_not_primary when this replica's shard
  /// configuration holds a minority of the assigned replica group;
  /// catching_up while the replica is still state-transferring;
  /// invalid_argument when the shard is not replicated here.
  Expected<std::optional<std::string>> get(std::string_view key);

  /// Degraded-read escape hatch: serve from the local store regardless of
  /// primary membership or catch-up state. The value may be arbitrarily
  /// stale — the caller is explicitly trading consistency for availability.
  /// Counted under kv.stale_reads. Only invalid_argument (not a replica)
  /// remains an error.
  Expected<std::optional<std::string>> get_stale(std::string_view key);

  /// True when the local replica of `shard` is in primary: its current
  /// regular configuration contains a majority of the router's assigned
  /// replica group for the shard.
  bool in_primary(shard::ShardId shard) const;

  /// True while the local replica of `shard` is reconciling after re-merge
  /// (reads refused with Errc::catching_up).
  bool catching_up(shard::ShardId shard) const;

  /// in_primary && !catching_up: the read gate is open.
  bool serving(shard::ShardId shard) const;

  /// The process hosting this agent crashed: volatile shard state — stores
  /// and transfer engines — is wiped. The harness calls this alongside
  /// crashing the shard rings; on recovery the replica re-enters as a
  /// catching-up joiner.
  void on_process_crash();

  Stats stats() const;
  const shard::KvStore* store(shard::ShardId shard) const;

  /// Test support: silently mutate (or, with nullopt, delete) a key in the
  /// local store WITHOUT going through the ring — the injected divergence
  /// anti-entropy must detect and repair. Keeps the shard's transfer engine
  /// digest coherent with the corruption. Never call outside tests.
  void corrupt_for_test(shard::ShardId shard, std::string_view key,
                        std::optional<std::string_view> value);

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct LocalShard {
    EvsNode* node{nullptr};
    shard::KvStore store;
    std::unique_ptr<shard::TransferEngine> engine;
    bool tick_armed{false};
  };

  Status submit(shard::ShardId shard,
                std::vector<std::vector<std::uint8_t>> payloads);
  void apply_locked(shard::ShardId shard,
                    std::span<const std::uint8_t> payload);
  bool in_primary_locked(shard::ShardId shard, const LocalShard& ls) const;
  shard::TransferEngine::Ctx ctx_locked(shard::ShardId shard, LocalShard& ls);
  /// (Re-)arm the per-shard engine timer on the shard node's scheduler; the
  /// callback re-arms itself and outlives node crashes (it no-ops while the
  /// node is down and resumes when it restarts).
  void arm_tick_locked(shard::ShardId shard, LocalShard& ls);
  LocalShard* find(shard::ShardId shard);
  const LocalShard* find(shard::ShardId shard) const;

  ProcessId self_;
  const shard::ShardRouter& router_;
  shard::TransferConfig transfer_cfg_;
  std::map<shard::ShardId, LocalShard> shards_;

  // The sim harness is single-threaded; the live harness applies each
  // shard's deliveries on that shard transport's loop thread while reads
  // come from callers — one agent-wide mutex keeps the stores coherent.
  mutable std::mutex mu_;

  /// Liveness token observed weakly by tick-timer callbacks: a timer firing
  /// after this agent is destroyed must drop dead instead of touching it.
  std::shared_ptr<char> alive_{std::make_shared<char>(0)};

  obs::MetricsRegistry metrics_;
  struct Met {
    explicit Met(obs::MetricsRegistry& r);
    obs::Counter& puts;
    obs::Counter& gets;
    obs::Counter& get_misses;
    obs::Counter& applied;
    obs::Counter& rejected_not_replica;
    obs::Counter& rejected_backpressure;
    obs::Counter& reads_blocked;
    obs::Counter& writes_blocked;
    obs::Counter& rejected_decode;
    obs::Gauge& local_shards;
    obs::Histogram& put_batch_size;
  } met_;
  shard::TransferMet met_t_;
};

}  // namespace evs::apps
