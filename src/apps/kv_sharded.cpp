#include "apps/kv_sharded.hpp"

#include <algorithm>

namespace evs::apps {

KvShardedNode::Met::Met(obs::MetricsRegistry& r)
    : puts(r.counter("kv.puts")),
      gets(r.counter("kv.gets")),
      get_misses(r.counter("kv.get_misses")),
      applied(r.counter("kv.applied")),
      rejected_not_replica(r.counter("kv.rejected_not_replica")),
      rejected_backpressure(r.counter("kv.rejected_backpressure")),
      reads_blocked(r.counter("kv.reads_blocked")),
      writes_blocked(r.counter("kv.writes_blocked")),
      rejected_decode(r.counter("kv.rejected_decode")),
      local_shards(r.gauge("shard.local_shards")),
      put_batch_size(r.histogram("kv.put_batch_size")) {}

KvShardedNode::KvShardedNode(ProcessId self, const shard::ShardRouter& router)
    : self_(self), router_(router), met_(metrics_) {}

void KvShardedNode::attach_shard(shard::ShardId shard, EvsNode& node) {
  std::lock_guard<std::mutex> lock(mu_);
  LocalShard& ls = shards_[shard];
  ls.node = &node;
  met_.local_shards.set(static_cast<std::int64_t>(shards_.size()));
  // Apply the shard's total order into the shard-local store. Regular
  // traffic arrives through the zero-copy batch callback; transitional and
  // recovery-time deliveries arrive per message through the scalar
  // callback — BOTH must feed the store, or every write that lands during
  // a configuration change silently misses the state machine. The payload
  // views are only valid for the callback, and KvStore copies what it
  // keeps, so no pinning is needed.
  node.set_on_deliver_batch(
      [this, shard](std::span<const EvsNode::DeliveryView> batch) {
        std::lock_guard<std::mutex> apply_lock(mu_);
        for (const auto& d : batch) apply_locked(shard, d.payload);
      });
  node.set_on_deliver([this, shard](const EvsNode::Delivery& d) {
    std::lock_guard<std::mutex> apply_lock(mu_);
    apply_locked(shard, d.payload);
  });
}

void KvShardedNode::apply_locked(shard::ShardId shard,
                                 std::span<const std::uint8_t> payload) {
  LocalShard* ls = find(shard);
  if (ls == nullptr) return;
  const auto before = ls->store.stats().rejected_decode;
  ls->store.apply(payload);
  if (ls->store.stats().rejected_decode == before) {
    met_.applied.inc();
  } else {
    met_.rejected_decode.inc();
  }
}

bool KvShardedNode::has_shard(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.find(shard) != shards_.end();
}

std::vector<shard::ShardId> KvShardedNode::local_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<shard::ShardId> out;
  out.reserve(shards_.size());
  for (const auto& [id, ls] : shards_) out.push_back(id);
  return out;
}

Status KvShardedNode::put(std::string_view key, std::string_view value) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(shard::encode_op(shard::KvOp::Put, key, value));
  return submit(shard, std::move(payloads));
}

Status KvShardedNode::del(std::string_view key) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(shard::encode_op(shard::KvOp::Del, key, {}));
  return submit(shard, std::move(payloads));
}

Status KvShardedNode::put_batch(
    const std::vector<std::pair<std::string, std::string>>& items) {
  // Group by shard so each shard ring sees one all-or-nothing send_batch.
  std::map<shard::ShardId, std::vector<std::vector<std::uint8_t>>> by_shard;
  for (const auto& [key, value] : items) {
    by_shard[router_.shard_of_key(key)].push_back(
        shard::encode_op(shard::KvOp::Put, key, value));
  }
  Status first_error;
  for (auto& [shard, payloads] : by_shard) {
    Status st = submit(shard, std::move(payloads));
    if (!st.ok() && first_error.ok()) first_error = std::move(st);
  }
  return first_error;
}

Status KvShardedNode::submit(shard::ShardId shard,
                             std::vector<std::vector<std::uint8_t>> payloads) {
  EvsNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LocalShard* ls = find(shard);
    if (ls == nullptr) {
      met_.rejected_not_replica.inc();
      return Status::error(Errc::invalid_argument,
                           "key's shard is not replicated on this process");
    }
    // Writes are primary-gated like reads: a minority component must not
    // order writes its re-merged peers never saw — with at most one primary
    // per shard, re-merged replica maps stay equal without state transfer.
    if (!in_primary_locked(shard, *ls)) {
      met_.writes_blocked.inc();
      return Status::error(Errc::blocked_not_primary,
                           "shard replica is not in the primary component");
    }
    node = ls->node;
  }
  const auto count = payloads.size();
  // SAFE delivery: a write is applied only when every member of the shard
  // configuration has it — the strongest per-shard guarantee EVS offers,
  // and what makes any in-primary replica safe to read.
  auto sent = node->send_batch(Service::Safe, std::move(payloads));
  if (!sent.ok()) {
    if (sent.code() == Errc::backpressure) met_.rejected_backpressure.inc();
    return sent.status();
  }
  met_.puts.inc(count);
  met_.put_batch_size.record(count);
  return Status::ok_status();
}

Expected<std::optional<std::string>> KvShardedNode::get(std::string_view key) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  if (ls == nullptr) {
    met_.rejected_not_replica.inc();
    return Status::error(Errc::invalid_argument,
                         "key's shard is not replicated on this process");
  }
  if (!in_primary_locked(shard, *ls)) {
    met_.reads_blocked.inc();
    return Status::error(Errc::blocked_not_primary,
                         "shard replica is not in the primary component");
  }
  met_.gets.inc();
  auto value = ls->store.get(key);
  if (!value.has_value()) met_.get_misses.inc();
  return Expected<std::optional<std::string>>(std::move(value));
}

bool KvShardedNode::in_primary(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  return ls != nullptr && in_primary_locked(shard, *ls);
}

bool KvShardedNode::in_primary_locked(shard::ShardId shard,
                                      const LocalShard& ls) const {
  // In-primary: the replica's CURRENT shard configuration holds a majority
  // of the shard's ASSIGNED replica group, so no disjoint configuration can
  // simultaneously hold one — at most one primary per shard at a time.
  const auto& assigned = router_.replicas(shard);
  if (assigned.empty() || ls.node == nullptr || !ls.node->running()) {
    return false;
  }
  const Configuration& cfg = ls.node->config();
  std::size_t present = 0;
  for (const ProcessId p : assigned) {
    if (cfg.contains(p)) ++present;
  }
  return present * 2 > assigned.size();
}

KvShardedNode::Stats KvShardedNode::stats() const {
  Stats s;
  s.puts = met_.puts.value();
  s.gets = met_.gets.value();
  s.get_misses = met_.get_misses.value();
  s.applied = met_.applied.value();
  s.rejected_not_replica = met_.rejected_not_replica.value();
  s.rejected_backpressure = met_.rejected_backpressure.value();
  s.reads_blocked = met_.reads_blocked.value();
  s.writes_blocked = met_.writes_blocked.value();
  return s;
}

const shard::KvStore* KvShardedNode::store(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  return ls == nullptr ? nullptr : &ls->store;
}

KvShardedNode::LocalShard* KvShardedNode::find(shard::ShardId shard) {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? nullptr : &it->second;
}

const KvShardedNode::LocalShard* KvShardedNode::find(
    shard::ShardId shard) const {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? nullptr : &it->second;
}

}  // namespace evs::apps
