#include "apps/kv_sharded.hpp"

#include <algorithm>

namespace evs::apps {

namespace {

/// Keep every stored entry transferable: a single-entry transfer chunk
/// carries ~50 bytes of headers around the entry, so cap writes a margin
/// below the ring's payload limit or a huge value could be committed into
/// a store no chunk can ever ship.
std::size_t write_size_cap(const EvsNode& node) {
  const std::size_t max = node.options().max_payload_bytes;
  return max > 512 ? max - 512 : max;
}

}  // namespace

KvShardedNode::Met::Met(obs::MetricsRegistry& r)
    : puts(r.counter("kv.puts")),
      gets(r.counter("kv.gets")),
      get_misses(r.counter("kv.get_misses")),
      applied(r.counter("kv.applied")),
      rejected_not_replica(r.counter("kv.rejected_not_replica")),
      rejected_backpressure(r.counter("kv.rejected_backpressure")),
      reads_blocked(r.counter("kv.reads_blocked")),
      writes_blocked(r.counter("kv.writes_blocked")),
      rejected_decode(r.counter("kv.rejected_decode")),
      local_shards(r.gauge("shard.local_shards")),
      put_batch_size(r.histogram("kv.put_batch_size")) {}

KvShardedNode::KvShardedNode(ProcessId self, const shard::ShardRouter& router,
                             shard::TransferConfig transfer)
    : self_(self),
      router_(router),
      transfer_cfg_(transfer),
      met_(metrics_),
      met_t_(metrics_) {}

shard::TransferEngine::Ctx KvShardedNode::ctx_locked(shard::ShardId shard,
                                                     LocalShard& ls) {
  return shard::TransferEngine::Ctx{
      ls.store, *ls.node, ls.node->scheduler().now(),
      std::span<const ProcessId>(router_.replicas(shard)), met_t_};
}

void KvShardedNode::attach_shard(shard::ShardId shard, EvsNode& node) {
  std::lock_guard<std::mutex> lock(mu_);
  LocalShard& ls = shards_[shard];
  ls.node = &node;
  if (ls.engine == nullptr) {
    ls.engine = std::make_unique<shard::TransferEngine>(self_, transfer_cfg_);
  }
  met_.local_shards.set(static_cast<std::int64_t>(shards_.size()));
  // Apply the shard's total order into the shard-local store. Regular
  // traffic arrives through the zero-copy batch callback; transitional and
  // recovery-time deliveries arrive per message through the scalar
  // callback — BOTH must feed the store, or every write that lands during
  // a configuration change silently misses the state machine. The payload
  // views are only valid for the callback, and KvStore copies what it
  // keeps, so no pinning is needed.
  node.set_on_deliver_batch(
      [this, shard](std::span<const EvsNode::DeliveryView> batch) {
        std::lock_guard<std::mutex> apply_lock(mu_);
        for (const auto& d : batch) apply_locked(shard, d.payload);
      });
  node.set_on_deliver([this, shard](const EvsNode::Delivery& d) {
    std::lock_guard<std::mutex> apply_lock(mu_);
    apply_locked(shard, d.payload);
  });
  // The transfer engine observes regular configuration installs through the
  // second config slot (the harness keeps the primary slot for its sink).
  node.set_on_config_change_observer([this, shard](const Configuration& cfg) {
    if (cfg.id.transitional) return;
    std::lock_guard<std::mutex> cfg_lock(mu_);
    LocalShard* s = find(shard);
    if (s == nullptr || s->engine == nullptr || s->node == nullptr) return;
    s->engine->on_regular_config(cfg, ctx_locked(shard, *s));
  });
  // A re-attach (harness remap) lands on a node that already has a live
  // configuration the observer will never replay: sync the engine now.
  if (node.running() && !node.config().members.empty()) {
    ls.engine->on_regular_config(node.config(), ctx_locked(shard, ls));
  }
  arm_tick_locked(shard, ls);
}

void KvShardedNode::arm_tick_locked(shard::ShardId shard, LocalShard& ls) {
  if (ls.tick_armed || ls.node == nullptr) return;
  ls.tick_armed = true;
  std::weak_ptr<char> weak = alive_;
  ls.node->scheduler().schedule_after(
      transfer_cfg_.tick_interval_us, [this, shard, weak] {
        if (weak.expired()) return;
        std::lock_guard<std::mutex> lock(mu_);
        LocalShard* s = find(shard);
        if (s == nullptr) return;
        if (s->engine != nullptr && s->node != nullptr) {
          s->engine->tick(ctx_locked(shard, *s));
        }
        s->tick_armed = false;
        arm_tick_locked(shard, *s);
      });
}

void KvShardedNode::apply_locked(shard::ShardId shard,
                                 std::span<const std::uint8_t> payload) {
  LocalShard* ls = find(shard);
  if (ls == nullptr) return;
  // The transfer op range never reaches the store: it is agent-to-agent
  // traffic riding the same total order as the writes (that ordering is
  // what makes transfer anchoring exact — see shard/transfer.hpp).
  if (!payload.empty() && payload[0] >= shard::kTransferOpFirst) {
    if (ls->engine == nullptr ||
        !ls->engine->handle_payload(payload, ctx_locked(shard, *ls))) {
      met_.rejected_decode.inc();
    }
    return;
  }
  const auto d = ls->store.apply(payload);
  if (d.has_value()) {
    met_.applied.inc();
    if (ls->engine != nullptr) ls->engine->on_kv_applied(d->key);
  } else {
    met_.rejected_decode.inc();
  }
}

bool KvShardedNode::has_shard(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.find(shard) != shards_.end();
}

std::vector<shard::ShardId> KvShardedNode::local_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<shard::ShardId> out;
  out.reserve(shards_.size());
  for (const auto& [id, ls] : shards_) out.push_back(id);
  return out;
}

Status KvShardedNode::put(std::string_view key, std::string_view value) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(shard::encode_op(shard::KvOp::Put, key, value));
  return submit(shard, std::move(payloads));
}

Status KvShardedNode::del(std::string_view key) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(shard::encode_op(shard::KvOp::Del, key, {}));
  return submit(shard, std::move(payloads));
}

KvShardedNode::PutBatchResult KvShardedNode::put_batch(
    const std::vector<std::pair<std::string, std::string>>& items) {
  // Group by shard so each shard ring sees one all-or-nothing send_batch.
  std::map<shard::ShardId, std::vector<std::vector<std::uint8_t>>> by_shard;
  for (const auto& [key, value] : items) {
    by_shard[router_.shard_of_key(key)].push_back(
        shard::encode_op(shard::KvOp::Put, key, value));
  }
  PutBatchResult result;
  result.shards.reserve(by_shard.size());
  for (auto& [shard, payloads] : by_shard) {
    ShardPutOutcome outcome;
    outcome.shard = shard;
    outcome.ops = payloads.size();
    outcome.status = submit(shard, std::move(payloads));
    result.shards.push_back(std::move(outcome));
  }
  return result;
}

Status KvShardedNode::submit(shard::ShardId shard,
                             std::vector<std::vector<std::uint8_t>> payloads) {
  EvsNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LocalShard* ls = find(shard);
    if (ls == nullptr) {
      met_.rejected_not_replica.inc();
      return Status::error(Errc::invalid_argument,
                          "key's shard is not replicated on this process");
    }
    // Writes are primary-gated like reads: a minority component must not
    // order writes its re-merged peers never saw. Catching up does NOT gate
    // writes — a catching-up replica's writes enter the same total order as
    // anyone else's, and its own apply loop handles them identically.
    if (!in_primary_locked(shard, *ls)) {
      met_.writes_blocked.inc();
      return Status::error(Errc::blocked_not_primary,
                           "shard replica is not in the primary component");
    }
    const std::size_t cap = write_size_cap(*ls->node);
    for (const auto& p : payloads) {
      if (p.size() > cap) {
        return Status::error(
            Errc::payload_too_large,
            "write exceeds the transfer-safe payload cap for this ring");
      }
    }
    node = ls->node;
  }
  const auto count = payloads.size();
  // SAFE delivery: a write is applied only when every member of the shard
  // configuration has it — the strongest per-shard guarantee EVS offers,
  // and what makes any serving replica safe to read.
  auto sent = node->send_batch(Service::Safe, std::move(payloads));
  if (!sent.ok()) {
    if (sent.code() == Errc::backpressure) met_.rejected_backpressure.inc();
    return sent.status();
  }
  met_.puts.inc(count);
  met_.put_batch_size.record(count);
  return Status::ok_status();
}

Expected<std::optional<std::string>> KvShardedNode::get(std::string_view key) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::lock_guard<std::mutex> lock(mu_);
  LocalShard* ls = find(shard);
  if (ls == nullptr) {
    met_.rejected_not_replica.inc();
    return Status::error(Errc::invalid_argument,
                         "key's shard is not replicated on this process");
  }
  if (!in_primary_locked(shard, *ls)) {
    met_.reads_blocked.inc();
    return Status::error(Errc::blocked_not_primary,
                         "shard replica is not in the primary component");
  }
  if (ls->engine != nullptr && ls->engine->catching_up()) {
    met_t_.reads_catching_up.inc();
    return Status::error(Errc::catching_up,
                         "replica is catching up after re-merge; retry, read "
                         "another replica, or use get_stale()");
  }
  met_.gets.inc();
  auto value = ls->store.get(key);
  if (!value.has_value()) met_.get_misses.inc();
  return Expected<std::optional<std::string>>(std::move(value));
}

Expected<std::optional<std::string>> KvShardedNode::get_stale(
    std::string_view key) {
  const shard::ShardId shard = router_.shard_of_key(key);
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  if (ls == nullptr) {
    met_.rejected_not_replica.inc();
    return Status::error(Errc::invalid_argument,
                         "key's shard is not replicated on this process");
  }
  met_t_.stale_reads.inc();
  return Expected<std::optional<std::string>>(ls->store.get(key));
}

bool KvShardedNode::in_primary(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  return ls != nullptr && in_primary_locked(shard, *ls);
}

bool KvShardedNode::catching_up(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  return ls != nullptr && ls->engine != nullptr && ls->engine->catching_up();
}

bool KvShardedNode::serving(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  if (ls == nullptr || !in_primary_locked(shard, *ls)) return false;
  return ls->engine == nullptr || !ls->engine->catching_up();
}

void KvShardedNode::on_process_crash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, ls] : shards_) {
    ls.store.clear();
    if (ls.engine != nullptr) ls.engine->reset_for_crash();
  }
}

bool KvShardedNode::in_primary_locked(shard::ShardId shard,
                                      const LocalShard& ls) const {
  // In-primary: the replica's CURRENT shard configuration holds a majority
  // of the shard's ASSIGNED replica group, so no disjoint configuration can
  // simultaneously hold one — at most one primary per shard at a time.
  const auto& assigned = router_.replicas(shard);
  if (assigned.empty() || ls.node == nullptr || !ls.node->running()) {
    return false;
  }
  const Configuration& cfg = ls.node->config();
  std::size_t present = 0;
  for (const ProcessId p : assigned) {
    if (cfg.contains(p)) ++present;
  }
  return present * 2 > assigned.size();
}

KvShardedNode::Stats KvShardedNode::stats() const {
  Stats s;
  s.puts = met_.puts.value();
  s.gets = met_.gets.value();
  s.get_misses = met_.get_misses.value();
  s.applied = met_.applied.value();
  s.rejected_not_replica = met_.rejected_not_replica.value();
  s.rejected_backpressure = met_.rejected_backpressure.value();
  s.reads_blocked = met_.reads_blocked.value();
  s.writes_blocked = met_.writes_blocked.value();
  s.reads_catching_up = met_t_.reads_catching_up.value();
  s.stale_reads = met_t_.stale_reads.value();
  return s;
}

const shard::KvStore* KvShardedNode::store(shard::ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LocalShard* ls = find(shard);
  return ls == nullptr ? nullptr : &ls->store;
}

void KvShardedNode::corrupt_for_test(shard::ShardId shard,
                                     std::string_view key,
                                     std::optional<std::string_view> value) {
  std::lock_guard<std::mutex> lock(mu_);
  LocalShard* ls = find(shard);
  if (ls == nullptr) return;
  if (value.has_value()) {
    ls->store.upsert(key, *value);
  } else {
    ls->store.erase_key(key);
  }
  if (ls->engine != nullptr) ls->engine->invalidate_digest();
}

KvShardedNode::LocalShard* KvShardedNode::find(shard::ShardId shard) {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? nullptr : &it->second;
}

const KvShardedNode::LocalShard* KvShardedNode::find(
    shard::ShardId shard) const {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? nullptr : &it->second;
}

}  // namespace evs::apps
