// Airline reservation system — the paper's first motivating application
// (Section 1): "An airline reservation system must continue to sell tickets
// even if the system becomes partitioned. Airlines have devised heuristics
// for use in non-primary components, based only on local data, that aim to
// maximize the number of tickets that can be sold while minimizing the risk
// of overbooking."
//
// Each booking office runs an AirlineAgent on an EvsNode. Sales are
// broadcast with agreed delivery and applied in the shared total order, so
// every member of a configuration reaches the same accept/reject decision.
// The ledger is a grow-only SET of accepted sales keyed by the sale's
// unique message id: different replicas witness different (disjoint)
// subsets across partitions, so reconciliation is set union — idempotent
// and order-independent. (A per-office counter merged by max would be
// wrong here: counters have multiple writers — every replica increments
// the seller's counter for the sales it witnesses — so two replicas' values
// count different sale subsets and are not comparable.) Every regular
// configuration change triggers a state-sync broadcast that carries the
// ledger across the merge.
//
// The partition heuristic: while the configuration is smaller than the
// universe, a component sells at most its proportional share of the seats
// that were free when the component formed, scaled by a risk factor.
// Overbooking remains possible — that is the example's point — and is
// detected deterministically after remerge (sum of counters > capacity).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "evs/node.hpp"

namespace evs::apps {

class AirlineAgent {
 public:
  struct Options {
    std::uint32_t capacity{100};  ///< seats on the flight
    std::size_t universe{0};      ///< total number of booking offices
    double risk_factor{1.0};      ///< fraction of the fair share a minority may sell
  };

  struct Stats {
    std::uint32_t accepted{0};
    std::uint32_t rejected{0};
    std::uint32_t sold_while_partitioned{0};
    std::uint32_t syncs_applied{0};
  };

  AirlineAgent(EvsNode& node, Options options);

  /// Request a sale of `seats` seats. The decision arrives via delivery and
  /// is recorded in outcomes().
  MsgId request_sale(std::uint32_t seats);

  /// Seats sold according to this replica's (possibly incomplete) history.
  std::uint32_t sold() const;
  std::uint32_t remaining() const {
    const std::uint32_t s = sold();
    return s >= options_.capacity ? 0 : options_.capacity - s;
  }

  /// True once the reconciled history records more sales than capacity.
  bool overbooked() const { return sold() > options_.capacity; }

  /// Seats this component may still sell under the partition heuristic.
  std::uint32_t partition_allowance() const;

  bool in_full_configuration() const;
  const Stats& stats() const { return stats_; }

  /// Seats sold per office, derived from the ledger.
  std::map<ProcessId, std::uint32_t> counters() const;

  /// The reconciled ledger: accepted sale id -> seats.
  const std::map<MsgId, std::uint32_t>& ledger() const { return ledger_; }

  const std::map<MsgId, bool>& outcomes() const { return outcomes_; }

 private:
  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);
  void record_sale(const MsgId& id, std::uint32_t seats);

  EvsNode& node_;
  Options options_;
  std::map<MsgId, std::uint32_t> ledger_;  ///< accepted sales (grow-only set)
  Stats stats_;
  std::map<MsgId, bool> outcomes_;

  // Partition-heuristic state: seats free when the current configuration
  // formed and how many were sold in it since.
  std::uint32_t free_at_config_{0};
  std::uint32_t sold_in_config_{0};
  std::size_t config_size_{0};
};

}  // namespace evs::apps
