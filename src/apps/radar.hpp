// Radar sensor fusion — the paper's third motivating application
// (Section 1): "A radar system combines a number of sensors, as well as a
// number of displays, in different locations. The most accurate available
// information, obtained from the sensor with the best view should be
// displayed to the operator. In the case of a network partition, however,
// it is better to display lower quality information from the connected
// sensors than to do nothing."
//
// Each process runs a RadarAgent: sensors publish readings (target track
// plus a quality figure), displays fuse them. Readings are broadcast with
// agreed delivery so every display in a component fuses the identical
// stream. Configuration changes prune the fusion set to the sensors in the
// current component: a partitioned display keeps working with whatever
// sensors it can still hear — degraded but live — and snaps back to the
// best sensor on remerge.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "evs/node.hpp"

namespace evs::apps {

struct RadarReading {
  ProcessId sensor;
  double x{0};
  double y{0};
  double quality{0};         ///< higher is better
  std::uint64_t sequence{0}; ///< per-sensor reading counter
};

class RadarAgent {
 public:
  struct Stats {
    std::uint64_t published{0};
    std::uint64_t fused{0};
    std::uint64_t pruned_sensors{0};
    std::uint64_t best_changes{0};
  };

  explicit RadarAgent(EvsNode& node);

  /// Publish a sensor reading (this process acting as a sensor).
  MsgId publish(double x, double y, double quality);

  /// The best (highest quality) current reading among sensors in this
  /// process's configuration, if any.
  std::optional<RadarReading> best() const;

  /// Latest reading per reachable sensor.
  const std::map<ProcessId, RadarReading>& readings() const { return readings_; }

  const Stats& stats() const { return stats_; }

 private:
  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);

  EvsNode& node_;
  std::map<ProcessId, RadarReading> readings_;
  std::uint64_t sequence_{0};
  ProcessId last_best_{};
  Stats stats_;
};

}  // namespace evs::apps
