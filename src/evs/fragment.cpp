#include "evs/fragment.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {

FragmentNode::Met::Met(obs::MetricsRegistry& r)
    : logical_sent(r.counter("fragment.logical_sent")),
      fragments_sent(r.counter("fragment.fragments_sent")),
      reassembled(r.counter("fragment.reassembled")),
      purged_incomplete(r.counter("fragment.purged_incomplete")),
      send_errors(r.counter("fragment.send_errors")) {}

FragmentNode::FragmentNode(EvsNode& node, Options options)
    : node_(node), options_(options), met_(node.metrics()) {
  EVS_ASSERT(options_.max_fragment_bytes > 0);
  node_.set_on_deliver([this](const EvsNode::Delivery& d) { on_deliver(d); });
  node_.set_on_config_change([this](const Configuration& c) { on_config(c); });
}

FragmentNode::Stats FragmentNode::stats() const {
  Stats s;
  s.logical_sent = met_.logical_sent.value();
  s.fragments_sent = met_.fragments_sent.value();
  s.reassembled = met_.reassembled.value();
  s.purged_incomplete = met_.purged_incomplete.value();
  s.send_errors = met_.send_errors.value();
  return s;
}

Expected<FragmentNode::LargeId> FragmentNode::send_large(
    Service service, std::vector<std::uint8_t> payload) {
  const LargeId id{node_.id(), ++counter_};
  const std::size_t chunk = options_.max_fragment_bytes;
  const std::uint32_t count =
      payload.empty() ? 1
                      : static_cast<std::uint32_t>((payload.size() + chunk - 1) / chunk);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t lo = static_cast<std::size_t>(i) * chunk;
    const std::size_t hi = std::min(payload.size(), lo + chunk);
    wire::Writer w;
    w.u64(id.counter);
    w.u32(i);
    w.u32(count);
    w.bytes(std::span<const std::uint8_t>(payload.data() + lo, hi - lo));
    if (Expected<MsgId> sent = node_.send(service, w.take()); !sent.ok()) {
      met_.send_errors.inc();
      return sent.status();
    }
    met_.fragments_sent.inc();
  }
  met_.logical_sent.inc();
  return id;
}

void FragmentNode::on_deliver(const EvsNode::Delivery& d) {
  wire::Reader r(d.payload);
  LargeId id{d.id.sender, r.u64()};
  const std::uint32_t index = r.u32();
  const std::uint32_t count = r.u32();
  std::vector<std::uint8_t> chunk = r.bytes();
  EVS_ASSERT(r.done());
  EVS_ASSERT(index < count);

  Partial& p = partial_[id];
  if (p.expected == 0) {
    p.expected = count;
    p.chunks.resize(count);
    p.got.assign(count, false);
    p.service = d.service;
  }
  EVS_ASSERT_MSG(p.expected == count, "fragment count mismatch");
  if (!p.got[index]) {
    p.got[index] = true;
    p.chunks[index] = std::move(chunk);
    ++p.received;
  }
  if (p.received < p.expected) return;

  LargeDelivery out;
  out.id = id;
  out.service = p.service;
  out.fragments = p.expected;
  for (const auto& c : p.chunks) {
    out.payload.insert(out.payload.end(), c.begin(), c.end());
  }
  out.config = d.config;
  out.ord = d.ord;
  partial_.erase(id);
  met_.reassembled.inc();
  if (deliver_handler_) deliver_handler_(out);
}

void FragmentNode::on_config(const Configuration& config) {
  if (config.id.transitional) return;
  // Fragments stranded on the other side of a configuration change can
  // never complete: every member of the old component holds the same
  // subset (failure atomicity of the underlying messages), so purging here
  // is deterministic across the component.
  met_.purged_incomplete.inc(partial_.size());
  partial_.clear();
}

}  // namespace evs
