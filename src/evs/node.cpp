#include "evs/node.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

constexpr const char* kKeyRingSeq = "ring_seq";
constexpr const char* kKeyIncarnation = "incarnation";
constexpr const char* kKeyLastReg = "last_reg";
constexpr const char* kKeyBacklogMeta = "backlog_meta";
constexpr const char* kKeyDeliveredMeta = "delivered_meta";
constexpr const char* kMsgPrefix = "bmsg/";

std::vector<ProcessId> with_member(std::vector<ProcessId> v, ProcessId p) {
  if (!std::binary_search(v.begin(), v.end(), p)) {
    v.insert(std::upper_bound(v.begin(), v.end(), p), p);
  }
  return v;
}

/// Non-owning view over an owned message (owner == nullptr): valid only
/// while `m` is — used for the synchronous recovery-time delivery calls,
/// where old_msgs_ outlives the callback.
RegularMsgView borrow_view(const RegularMsg& m) {
  RegularMsgView v;
  v.ring = m.ring;
  v.seq = m.seq;
  v.id = m.id;
  v.service = m.service;
  v.payload = std::span<const std::uint8_t>(m.payload);
  return v;
}

}  // namespace

/// Backlog keys are scoped by ring and use fixed-width zero-padded hex for
/// every numeric component. Both properties are load-bearing for prefix
/// operations: "bmsg/<ring 1>/" must never be a string prefix of
/// "bmsg/<ring 16>/" (variable-width "1" vs "10" would collide), and the
/// ring scope lets recovery distinguish the backlog of the last regular
/// configuration from stale records that survived a crash mid-GC.
std::string backlog_prefix(const RingId& ring) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%016llx.%08lx/", kMsgPrefix,
                static_cast<unsigned long long>(ring.seq),
                static_cast<unsigned long>(ring.rep.value));
  return buf;
}

std::string backlog_msg_key(const RingId& ring, SeqNum seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(seq));
  return backlog_prefix(ring) + buf;
}

const char* to_string(EvsNode::State s) {
  switch (s) {
    case EvsNode::State::Down: return "Down";
    case EvsNode::State::Operational: return "Operational";
    case EvsNode::State::Gather: return "Gather";
    case EvsNode::State::Recovery: return "Recovery";
  }
  return "?";
}

Status EvsNode::Options::validate() const {
  const auto fail = [](const char* rule) {
    return Status::error(Errc::invalid_options, rule);
  };
  if (token_loss_timeout_us == 0) return fail("token_loss_timeout_us must be positive");
  if (beacon_interval_us == 0) return fail("beacon_interval_us must be positive");
  if (join_interval_us == 0) return fail("join_interval_us must be positive");
  if (gather_fail_timeout_us == 0)
    return fail("gather_fail_timeout_us must be positive");
  if (consensus_wait_timeout_us == 0)
    return fail("consensus_wait_timeout_us must be positive");
  if (exchange_interval_us == 0) return fail("exchange_interval_us must be positive");
  if (recovery_timeout_us == 0) return fail("recovery_timeout_us must be positive");
  if (singleton_token_interval_us == 0)
    return fail("singleton_token_interval_us must be positive");
  if (token_retransmit_interval_us == 0)
    return fail("token_retransmit_interval_us must be positive");
  if (token_retransmit_limit < 0)
    return fail("token_retransmit_limit must be non-negative");
  if (static_cast<SimTime>(token_retransmit_limit) * token_retransmit_interval_us >=
      token_loss_timeout_us) {
    // Otherwise the retransmit guard is still resending a dead token when
    // the loss timer fires, and the gather it triggers races the resends.
    return fail(
        "token_retransmit_limit * token_retransmit_interval_us must stay "
        "below token_loss_timeout_us");
  }
  if (static_cast<SimTime>(token_retransmit_limit) * token_retransmit_per_member_us >
      token_loss_per_member_us) {
    // The same rule must hold at every ring size n: the burst and the loss
    // timeout both grow linearly in n, so bounding the flat terms (above)
    // and the slopes (here) bounds every effective combination.
    return fail(
        "token_retransmit_limit * token_retransmit_per_member_us must not "
        "exceed token_loss_per_member_us");
  }
  if (join_interval_us >= gather_fail_timeout_us) {
    // A candidate must get several join broadcasts before it is failed for
    // silence, or every gather immediately shrinks to a singleton.
    return fail("join_interval_us must stay below gather_fail_timeout_us");
  }
  if (exchange_interval_us >= recovery_timeout_us)
    return fail("exchange_interval_us must stay below recovery_timeout_us");
  if (max_payload_bytes == 0) return fail("max_payload_bytes must be positive");
  if (max_payload_bytes > wire::kMaxFrameBody - 4096)
    return fail("max_payload_bytes leaves no frame headroom below kMaxFrameBody");
  if (ordering.max_new_per_token <= 0)
    return fail("ordering.max_new_per_token must be positive");
  if (ordering.max_retransmit_per_token < 0)
    return fail("ordering.max_retransmit_per_token must be non-negative");
  if (ordering.max_rtr_entries == 0)
    return fail("ordering.max_rtr_entries must be positive");
  if (ordering.max_rtr_entries > kMaxTokenRtr) {
    // Otherwise we would emit tokens our own codec rejects (kMaxTokenRtr is
    // the decode-side cardinality bound).
    return fail("ordering.max_rtr_entries must not exceed kMaxTokenRtr");
  }
  if (ordering.flow_control_window <
      static_cast<std::uint32_t>(ordering.max_new_per_token)) {
    return fail("ordering.flow_control_window must be >= max_new_per_token");
  }
  if (max_pending_sends == 0) return fail("max_pending_sends must be positive");
  if (batch_max_frames < 1) return fail("batch_max_frames must be at least 1");
  if (batch_max_bytes == 0) return fail("batch_max_bytes must be positive");
  return Status{};
}

EvsNode::Options EvsNode::Options::scaled_for(std::size_t n) {
  Options o;
  if (n <= 8) return o;  // the defaults (plus the slopes) already cover small rings
  // Dilate every periodic sender interval by ceil(n / 8) so the per-sim-second
  // broadcast volume stays O(n) packets cluster-wide instead of O(n) per node
  // (O(n^2) total): beacons, join floods and exchange rebroadcasts are each
  // "every member broadcasts every interval". The flat timeout bases stretch
  // by the same factor, which keeps every validate() ratio (retransmit burst
  // below token loss, join tick below gather fail, exchange tick below
  // recovery) exactly as it is in the default profile. The per-member slopes
  // are untouched: they model per-round cost growth, the dilation models
  // round *frequency*. See DESIGN.md "Timer scaling".
  const SimTime f = static_cast<SimTime>((n + 7) / 8);
  o.token_loss_timeout_us *= f;
  o.beacon_interval_us *= f;
  o.join_interval_us *= f;
  o.gather_fail_timeout_us *= f;
  o.consensus_wait_timeout_us *= f;
  o.exchange_interval_us *= f;
  o.recovery_timeout_us *= f;
  o.token_retransmit_interval_us *= f;
  return o;
}

EvsNode::Met::Met(obs::MetricsRegistry& r)
    : sent(r.counter("evs.sent")),
      delivered(r.counter("evs.delivered")),
      delivered_transitional(r.counter("evs.delivered_transitional")),
      conf_changes(r.counter("evs.conf_changes")),
      gathers(r.counter("evs.gathers")),
      recoveries(r.counter("evs.recoveries")),
      discarded(r.counter("evs.discarded")),
      tokens_handled(r.counter("evs.tokens_handled")),
      rejected_frames(r.counter("evs.rejected_frames")),
      rejected_decode(r.counter("evs.rejected_decode")),
      stale_rejected(r.counter("evs.stale_rejected")),
      duplicate_regulars(r.counter("evs.duplicate_regulars")),
      stale_tokens(r.counter("evs.stale_tokens")),
      token_retransmits(r.counter("evs.token_retransmits")),
      send_errors(r.counter("evs.send_errors")),
      backpressure_rejections(r.counter("evs.backpressure_rejections")),
      datagrams_packed(r.counter("net.datagrams_packed")),
      piggybacked_msgs(r.counter("ordering.piggybacked_msgs")),
      piggyback_carried(r.counter("ordering.piggyback_carried")),
      storage_fail_stops(r.counter("evs.storage_fail_stops")),
      persist_retries(r.counter("evs.persist_retries")),
      state_fail_stops(r.counter("evs.state_fail_stops")),
      ring_seq_repairs(r.counter("evs.ring_seq_repairs")),
      pending_sends(r.gauge("evs.pending_sends")),
      gather_us(r.histogram("evs.gather_us")),
      recovery_us(r.histogram("evs.recovery_us")),
      token_rotation_us(r.histogram("evs.token_rotation_us")),
      deliver_batch_size(r.histogram("evs.deliver_batch_size")) {}

EvsNode::Stats EvsNode::stats() const {
  Stats s;
  s.sent = met_.sent.value();
  s.delivered = met_.delivered.value();
  s.delivered_transitional = met_.delivered_transitional.value();
  s.conf_changes = met_.conf_changes.value();
  s.gathers = met_.gathers.value();
  s.recoveries = met_.recoveries.value();
  s.discarded = met_.discarded.value();
  s.tokens_handled = met_.tokens_handled.value();
  s.rejected_frames = met_.rejected_frames.value();
  s.rejected_decode = met_.rejected_decode.value();
  s.stale_rejected = met_.stale_rejected.value();
  s.duplicate_regulars = met_.duplicate_regulars.value();
  s.stale_tokens = met_.stale_tokens.value();
  s.token_retransmits = met_.token_retransmits.value();
  s.send_errors = met_.send_errors.value();
  s.backpressure_rejections = met_.backpressure_rejections.value();
  s.datagrams_packed = met_.datagrams_packed.value();
  s.piggybacked_msgs = met_.piggybacked_msgs.value();
  s.piggyback_carried = met_.piggyback_carried.value();
  s.storage_fail_stops = met_.storage_fail_stops.value();
  s.persist_retries = met_.persist_retries.value();
  s.state_fail_stops = met_.state_fail_stops.value();
  s.ring_seq_repairs = met_.ring_seq_repairs.value();
  return s;
}

void EvsNode::note_frame_reject(Errc cause) {
  met_.rejected_frames.inc();
  // Cold path: the per-cause lookup builds a name, which is fine here.
  metrics_.counter(std::string("evs.rejected_frames.") + to_string(cause)).inc();
}

void EvsNode::span_end(obs::SpanId& id) {
  if (spans_ != nullptr && id != 0) spans_->end(id, net_.scheduler().now());
  id = 0;
}

void EvsNode::close_episode_spans() {
  span_end(rebroadcast_span_);
  span_end(exchange_span_);
  span_end(recovery_span_);
  span_end(gather_span_);
  span_end(rotation_span_);
}

EvsNode::EvsNode(ProcessId id, Transport& net, StableStore& store, TraceLog* trace,
                 Options options)
    : self_(id), net_(net), store_(store), trace_(trace), opts_(options) {
  const Status valid = opts_.validate();
  EVS_ASSERT_MSG(valid.ok(), valid.message().c_str());
  if (opts_.faults.skip_safe_horizon) opts_.ordering.deliver_unsafe = true;
  // Pre-create the memory-bound gauges: obs snapshots must carry them (the
  // schema validator checks) even before the first ring install.
  metrics_.gauge("ordering.store_msgs");
  metrics_.gauge("ordering.store_bytes");
  metrics_.gauge("ordering.store_msgs_peak");
  metrics_.gauge("ordering.store_bytes_peak");
}

EvsNode::~EvsNode() {
  // Deliberately not a crash(): destroying a running node without crashing it
  // first is a harness bug we want to surface, except at end of simulation.
  if (state_ != State::Down) net_.detach(self_);
}

// --------------------------------------------------------------------------
// persistence

Status EvsNode::persist_ring_seq() {
  wire::Writer w;
  w.u64(ring_seq_);
  return store_.put(kKeyRingSeq, w.take());
}

Status EvsNode::persist_install(const Configuration& config) {
  // Ordering within the install record sequence: the new last_reg lands
  // first, then the old backlog is reclaimed. A crash between the two
  // leaves a new-ring last_reg next to stale old-ring backlog records —
  // load_persisted() quarantines the mismatched-ring leftovers, so the
  // half-finished GC can only waste space, never resurrect deliveries.
  wire::Writer w;
  encode(w, config.id);
  w.pid_vec(config.members);
  if (Status st = store_.put(kKeyLastReg, w.take()); !st.ok()) return st;
  if (Status st = persist_ring_seq(); !st.ok()) return st;
  if (Status st = store_.erase_prefix(kMsgPrefix); !st.ok()) return st;
  if (Status st = store_.erase(kKeyBacklogMeta); !st.ok()) return st;
  return store_.erase(kKeyDeliveredMeta);
}

Status EvsNode::persist_delivered_meta() {
  // The model lets a process "recover with stable storage intact" whose
  // contents were affected by the order of delivered messages (Section 1).
  // Recording how far delivery progressed is what lets the recovered
  // incarnation place its transitional configuration *after* everything the
  // previous incarnation delivered (Spec 6.1) and avoid redelivery (1.4).
  // Written BEFORE the corresponding application deliveries run
  // (deliver_ready): a crash in between loses deliveries at a process that
  // failed — which Fail-event semantics permit — while the reverse order
  // would redeliver across incarnations, which Spec 1.4 forbids.
  wire::Writer w;
  encode(w, core_->ring());
  w.u64(core_->delivered_upto());
  w.u64(core_->safe_upto());
  return store_.put(kKeyDeliveredMeta, w.take());
}

Status EvsNode::persist_recovery_state() {
  // Step 5.c ordering: messages and the merged obligation set reach stable
  // storage BEFORE the complete-acknowledgment is transmitted. A crash after
  // the ack therefore finds everything the acknowledgment promised. If any
  // record fails to persist, the caller aborts the acknowledgement.
  for (const auto& [seq, m] : old_msgs_) {
    const std::string key = backlog_msg_key(old_ring_, seq);
    if (store_.contains(key)) continue;
    if (Status st = store_.put(key, encode_msg(m)); !st.ok()) return st;
  }
  wire::Writer w;
  encode(w, old_ring_);
  w.u64(old_delivered_upto_);
  w.u64(old_safe_upto_);
  w.seq_set(old_delivered_extra_);
  w.pid_vec(obligation_set_);
  return store_.put(kKeyBacklogMeta, w.take());
}

Status EvsNode::load_persisted() {
  // Recovery-time load is *tolerant*: a crash can land between any two
  // records of a multi-record persist (e.g. after the new last_reg but
  // before the old backlog's GC), so the store legitimately holds records
  // from different epochs. Anything that does not cohere with the newest
  // last_reg — mismatched rings, undecodable bodies — is dropped (and
  // erased best-effort, counted as a storage repair), never asserted on.
  auto quarantine = [this](const std::string& key) {
    store_.metrics().counter("storage.repairs").inc();
    (void)store_.erase(key);  // best-effort cleanup of the stale record
  };

  if (auto blob = store_.get(kKeyRingSeq)) {
    wire::Reader r(*blob);
    const std::uint64_t seq = r.u64();
    if (r.done()) {
      ring_seq_ = seq;
    } else {
      quarantine(kKeyRingSeq);
    }
  }
  std::uint64_t incarnation = 1;
  if (auto blob = store_.get(kKeyIncarnation)) {
    wire::Reader r(*blob);
    const std::uint64_t persisted = r.u64();
    if (r.done()) incarnation = persisted + 1;
  }
  {
    wire::Writer w;
    w.u64(incarnation);
    if (Status st = store_.put(kKeyIncarnation, w.take()); !st.ok()) return st;
  }
  // Message ids must be unique across incarnations of the same process id.
  msg_counter_ = incarnation << 40;

  if (auto blob = store_.get(kKeyLastReg)) {
    wire::Reader r(*blob);
    Configuration cfg;
    cfg.id = decode_config_id(r);
    cfg.members = r.pid_vec();
    if (r.done()) {
      reg_config_ = std::move(cfg);
      old_ring_ = reg_config_.id.ring;
    } else {
      quarantine(kKeyLastReg);
    }
  }
  if (auto blob = store_.get(kKeyBacklogMeta)) {
    wire::Reader r(*blob);
    const RingId meta_ring = decode_ring_id(r);
    const SeqNum delivered = r.u64();
    const SeqNum safe = r.u64();
    SeqSet extra = r.seq_set();
    std::vector<ProcessId> obligations = r.pid_vec();
    if (r.done() && meta_ring == old_ring_) {
      old_delivered_upto_ = delivered;
      old_safe_upto_ = safe;
      old_delivered_extra_ = std::move(extra);
      obligation_set_ = std::move(obligations);
    } else {
      quarantine(kKeyBacklogMeta);  // stale: predates the last install's GC
    }
  }
  if (auto blob = store_.get(kKeyDeliveredMeta)) {
    wire::Reader r(*blob);
    const RingId meta_ring = decode_ring_id(r);
    const SeqNum delivered = r.u64();
    const SeqNum safe = r.u64();
    if (r.done() && meta_ring == old_ring_) {
      old_delivered_upto_ = std::max(old_delivered_upto_, delivered);
      old_safe_upto_ = std::max(old_safe_upto_, safe);
    } else {
      quarantine(kKeyDeliveredMeta);
    }
  }
  const std::string live_prefix =
      old_ring_.valid() ? backlog_prefix(old_ring_) : std::string{};
  for (const std::string& key : store_.keys_with_prefix(kMsgPrefix)) {
    if (live_prefix.empty() || key.compare(0, live_prefix.size(), live_prefix) != 0) {
      quarantine(key);  // backlog of a ring the last install already GC'd
      continue;
    }
    auto msg = try_decode(*store_.get(key));
    const RegularMsg* m =
        msg.has_value() ? std::get_if<RegularMsg>(&*msg) : nullptr;
    if (m == nullptr || !(m->ring == old_ring_)) {
      quarantine(key);
      continue;
    }
    old_received_.insert(m->seq);
    old_msgs_.emplace(m->seq, *m);
  }
  return Status{};
}

// --------------------------------------------------------------------------
// lifecycle

void EvsNode::start() {
  EVS_ASSERT_MSG(state_ == State::Down, "start() on a running node");
  if (Status st = load_persisted(); !st.ok()) {
    // The incarnation counter must be durable before anything else happens:
    // without it, message ids could repeat across incarnations.
    storage_fail_stop("boot incarnation");
    return;
  }
  if (ring_seq_ >= kMaxRingSeq) {
    // A persisted counter at the plausibility ceiling means the store rotted
    // (healthy systems never get near 2^62 installs). Booting with it would
    // broadcast joins every peer's codec rejects.
    protocol_fail_stop("boot ring_seq above kMaxRingSeq");
    return;
  }
  ring_seq_ += 1;
  if (Status st = persist_ring_seq(); !st.ok()) {
    storage_fail_stop("boot ring_seq");
    return;
  }
  const RingId singleton{ring_seq_, self_};
  net_.attach(self_, this);
  if (old_ring_.valid()) {
    // The previous incarnation died holding a backlog (possibly with
    // obligations from an interrupted recovery): resolve it alone, exactly
    // like a recovery whose transitional configuration is {self}.
    recovery_local_plan_and_install(singleton);
  } else {
    install_configuration(singleton, {self_}, nullptr);
  }
  // The install itself persists; its failure tears the partial boot down.
  if (state_ == State::Down) return;
  // Announce presence so existing components notice us and gather.
  broadcast(encode_msg(BeaconMsg{self_, reg_config_.id.ring}));
}

void EvsNode::storage_fail_stop(const char* where) {
  met_.storage_fail_stops.inc();
  EVS_WARN("evs", "%s stable storage failed at %s; fail-stop",
           to_string(self_).c_str(), where);
  if (state_ != State::Down) {
    // A running node that cannot persist becomes a failed process — the
    // failure mode every peer already tolerates (and the trace records as a
    // Fail event). Its next start() replays whatever the store kept.
    crash();
    return;
  }
  // Partial boot: undo whatever start() got through before the write failed.
  // detach() on a never-attached process is a no-op.
  bump_epoch();
  net_.detach(self_);
  core_.reset();
  gather_.reset();
  recovery_.reset();
  my_exchange_.reset();
  pending_.clear();
  met_.pending_sends.set(0);
  new_ring_buffer_.clear();
  buffered_token_.reset();
}

void EvsNode::protocol_fail_stop(const char* what) {
  met_.state_fail_stops.inc();
  EVS_WARN("evs", "%s inconsistent protocol state (%s); fail-stop",
           to_string(self_).c_str(), what);
  if (state_ != State::Down) {
    // Same exit as a failed persist: become a failed process rather than
    // feed corrupted state into the agreed order. Peers detect the silence
    // and reconfigure; our next start() reloads from stable storage.
    crash();
    return;
  }
  // Fail-stop during boot: tear the partial start() down.
  bump_epoch();
  net_.detach(self_);
  core_.reset();
  gather_.reset();
  recovery_.reset();
  my_exchange_.reset();
  pending_.clear();
  met_.pending_sends.set(0);
  new_ring_buffer_.clear();
  buffered_token_.reset();
}

void EvsNode::repair_ring_seq() {
  if (reg_config_.id.ring.valid() && ring_seq_ < reg_config_.id.ring.seq) {
    met_.ring_seq_repairs.inc();
    EVS_WARN("evs", "%s ring_seq regressed below installed ring (%llu < %llu); repaired",
             to_string(self_).c_str(), static_cast<unsigned long long>(ring_seq_),
             static_cast<unsigned long long>(reg_config_.id.ring.seq));
    ring_seq_ = reg_config_.id.ring.seq;
  }
}

bool EvsNode::old_state_consistent() const {
  // Mirrors read_exchange's wire-level invariants on the old-ring snapshot.
  if (old_gc_upto_ > old_delivered_upto_) return false;
  if (old_gc_upto_ > 0 && old_received_.contiguous_from(0) < old_gc_upto_) return false;
  if (!old_ring_.valid() && (old_gc_upto_ != 0 || !old_received_.empty())) return false;
  // Body spot-check at the GC boundary: old_msgs_ holds every received seq
  // above old_gc_upto_, so a regressed watermark claims a reclaimed body is
  // still resident — and the rebroadcast path asserts on that lie.
  if (old_received_.contains(old_gc_upto_ + 1) &&
      old_msgs_.find(old_gc_upto_ + 1) == old_msgs_.end()) {
    return false;
  }
  return true;
}

void EvsNode::recovery_local_plan_and_install(RingId new_ring) {
  const auto lookup = [this](SeqNum s) -> const RegularMsg* {
    auto it = old_msgs_.find(s);
    return it == old_msgs_.end() ? nullptr : &it->second;
  };
  const std::vector<ProcessId> obligations =
      opts_.faults.ignore_obligations ? std::vector<ProcessId>{}
                                      : with_member(obligation_set_, self_);
  const Step6Plan plan =
      plan_step6(with_member({}, self_), old_received_, old_safe_upto_, obligations,
                 lookup, old_delivered_upto_, old_delivered_extra_, old_gc_upto_);
  install_configuration(new_ring, {self_}, &plan);
}

void EvsNode::crash() {
  if (state_ == State::Down) return;
  if (trace_ != nullptr && reg_config_.id.valid()) {
    TraceEvent e;
    e.type = EventType::Fail;
    e.process = self_;
    e.time = net_.scheduler().now();
    e.config = reg_config_.id;
    trace_->record(std::move(e));
  }
  bump_epoch();
  net_.scheduler().cancel(token_loss_timer_);
  cancel_token_retransmit();
  close_episode_spans();
  gather_since_ = recovery_since_ = rotation_since_ = 0;
  net_.detach(self_);
  state_ = State::Down;
  core_.reset();
  gather_.reset();
  recovery_.reset();
  my_exchange_.reset();
  pending_.clear();
  backpressured_ = false;  // no drain callback across a crash
  met_.pending_sends.set(0);
  new_ring_buffer_.clear();
  buffered_token_.reset();
}

Expected<MsgId> EvsNode::send(Service service, std::vector<std::uint8_t> payload) {
  if (!running()) {
    met_.send_errors.inc();
    return Status::error(Errc::not_running, "send() on a crashed node");
  }
  if (payload.size() > opts_.max_payload_bytes) {
    met_.send_errors.inc();
    return Status::error(Errc::payload_too_large,
                         "payload exceeds Options::max_payload_bytes");
  }
  if (pending_.size() >= opts_.max_pending_sends) {
    // Fail fast instead of queueing without bound; the application retries
    // after the drain callback (or any later moment of its choosing).
    met_.send_errors.inc();
    met_.backpressure_rejections.inc();
    backpressured_ = true;
    return Status::error(Errc::backpressure,
                         "pending send queue at Options::max_pending_sends");
  }
  MsgId id{self_, ++msg_counter_};
  pending_.push_back(PendingSend{id, service, std::move(payload)});
  note_pending_sends();
  return id;
}

Expected<std::vector<MsgId>> EvsNode::send_batch(
    Service service, std::vector<std::vector<std::uint8_t>> payloads) {
  if (!running()) {
    met_.send_errors.inc();
    return Status::error(Errc::not_running, "send_batch() on a crashed node");
  }
  // All-or-nothing: validate the whole batch before queueing anything, so a
  // failure never leaves a partial burst in the queue.
  for (const auto& p : payloads) {
    if (p.size() > opts_.max_payload_bytes) {
      met_.send_errors.inc();
      return Status::error(Errc::payload_too_large,
                           "batch payload exceeds Options::max_payload_bytes");
    }
  }
  if (pending_.size() + payloads.size() > opts_.max_pending_sends) {
    met_.send_errors.inc();
    met_.backpressure_rejections.inc();
    backpressured_ = true;
    // A large batch can be rejected while pending_ is already at or below the
    // half-cap mark. The single-send path never faces this (rejection implies
    // pending_ == cap), but here the drain condition may hold at rejection
    // time: run the hysteresis check now so the sender's drain callback does
    // not stall until an unrelated token visit.
    note_pending_sends();
    return Status::error(Errc::backpressure,
                         "batch does not fit under Options::max_pending_sends");
  }
  std::vector<MsgId> ids;
  ids.reserve(payloads.size());
  for (auto& p : payloads) {
    MsgId id{self_, ++msg_counter_};
    pending_.push_back(PendingSend{id, service, std::move(p)});
    ids.push_back(id);
  }
  note_pending_sends();
  return ids;
}

void EvsNode::note_pending_sends() {
  met_.pending_sends.set(static_cast<std::int64_t>(pending_.size()));
  if (backpressured_ && pending_.size() <= opts_.max_pending_sends / 2) {
    // Half-cap hysteresis: waking producers at cap-minus-one would win them
    // a single accepted send before the next rejection.
    backpressured_ = false;
    if (drain_handler_) drain_handler_();
  }
}

// --------------------------------------------------------------------------
// configuration installation (recovery step 6 — atomic)

void EvsNode::emit_conf_change(const Configuration& config, Ord ord) {
  met_.conf_changes.inc();
  if (!(last_ord_ < ord || met_.conf_changes.value() == 1)) {
    EVS_WARN("evs", "%s conf change ord regressed: last=%s next=%s config=%s",
             to_string(self_).c_str(), to_string(last_ord_).c_str(),
             to_string(ord).c_str(), to_string(config.id).c_str());
  }
  EVS_ASSERT_MSG(last_ord_ < ord || met_.conf_changes.value() == 1,
                 "configuration change ord must advance");
  last_ord_ = ord;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.type = EventType::DeliverConf;
    e.process = self_;
    e.time = net_.scheduler().now();
    e.config = config.id;
    e.members = config.members;
    e.ord = ord;
    trace_->record(std::move(e));
  }
  if (config_handler_) config_handler_(config);
  if (config_observer_) config_observer_(config);
}

void EvsNode::deliver_note(const RegularMsgView& m, const Configuration& config,
                           Ord ord) {
  met_.delivered.inc();
  if (config.id.transitional) met_.delivered_transitional.inc();
  EVS_ASSERT_MSG(last_ord_ < ord, "delivery ord must advance in program order");
  last_ord_ = ord;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.type = EventType::Deliver;
    e.process = self_;
    e.time = net_.scheduler().now();
    e.msg = m.id;
    e.service = m.service;
    e.seq = m.seq;
    e.config = config.id;
    e.ord = ord;
    trace_->record(std::move(e));
  }
}

void EvsNode::deliver_one(const RegularMsgView& m, const Configuration& config) {
  const Ord ord = ord_message_delivery(m.ring, m.seq);
  deliver_note(m, config, ord);
  if (deliver_handler_) {
    deliver_handler_(Delivery{m.id, m.service, m.seq,
                              std::vector<std::uint8_t>(m.payload.begin(),
                                                        m.payload.end()),
                              config, ord});
  }
}

void EvsNode::install_configuration(RingId new_ring, std::vector<ProcessId> members,
                                    const Step6Plan* plan) {
  bump_epoch();
  EVS_ASSERT(std::is_sorted(members.begin(), members.end()));
  EVS_ASSERT(std::binary_search(members.begin(), members.end(), self_));

  const SimTime install_now = net_.scheduler().now();
  const bool had_trans = plan != nullptr && plan->has_transitional && old_ring_.valid();
  // The recovery episode (steps 3-5) ends here; step 6 is atomic.
  close_episode_spans();
  if (recovery_since_ != 0) met_.recovery_us.record(install_now - recovery_since_);
  gather_since_ = recovery_since_ = rotation_since_ = 0;

  // Persist the install BEFORE any step-6 delivery reaches the application.
  // A crash after the persist recovers into the new configuration having
  // lost the 6.b/6.d deliveries — legal, because the crash is a Fail event
  // and lost deliveries at a failed process are permitted. The reverse order
  // would let a crash redeliver the backlog across incarnations (Spec 1.4)
  // or place the recovered transitional configuration before deliveries the
  // application already observed (Spec 6.1).
  Configuration next;
  next.id = ConfigId::regular(new_ring);
  next.members = members;
  ring_seq_ = std::max(ring_seq_, new_ring.seq);
  if (Status st = persist_install(next); !st.ok()) {
    storage_fail_stop("install");
    return;
  }

  if (had_trans) {
    // 6.b: remaining old-ring messages that are deliverable in the *old
    // regular* configuration.
    for (SeqNum s : plan->regular_seqs) {
      auto it = old_msgs_.find(s);
      EVS_ASSERT(it != old_msgs_.end());
      deliver_one(borrow_view(it->second), reg_config_);
    }
    // 6.c: the transitional configuration change.
    Configuration trans;
    trans.id = ConfigId::trans(old_ring_, new_ring);
    trans.members = plan->trans_members;
    // The transitional configuration change follows everything this process
    // delivered in the old regular configuration — including deliveries of a
    // previous incarnation recorded in stable storage, which can exceed the
    // plan's cutoff when the backlog itself was never persisted. For shared
    // transitional configurations the cutoff already dominates every
    // member's delivered_upto, so this max cannot break Spec 6.2.
    const SeqNum ord_cutoff = std::max(plan->cutoff, old_delivered_upto_);
    emit_conf_change(trans, ord_transitional_conf(old_ring_, ord_cutoff));
    // 6.d: deliveries in the transitional configuration.
    for (SeqNum s : plan->trans_seqs) {
      auto it = old_msgs_.find(s);
      EVS_ASSERT(it != old_msgs_.end());
      deliver_one(borrow_view(it->second), trans);
    }
    met_.discarded.inc(plan->discarded.size());
  }

  // 6.e: install the new regular configuration. The node is committed to it
  // before the application learns of it, so a configuration-change handler
  // may immediately send() into the new configuration.
  reg_config_ = next;

  core_.emplace(new_ring, members, self_, opts_.ordering, &metrics_);
  old_ring_ = new_ring;
  old_msgs_.clear();
  old_received_ = SeqSet{};
  old_safe_upto_ = 0;
  old_delivered_upto_ = 0;
  old_gc_upto_ = 0;
  old_delivered_extra_ = SeqSet{};
  obligation_set_.clear();  // step 1: no obligations in a regular configuration

  gather_.reset();
  recovery_.reset();
  my_exchange_.reset();
  acked_complete_ = false;
  state_ = State::Operational;

  emit_conf_change(next, ord_regular_conf(new_ring));

  if (spans_ != nullptr) {
    const obs::SpanId s = spans_->instant(self_, "config.install", install_now);
    spans_->attr(s, "ring", to_string(new_ring));
    spans_->attr(s, "members", std::to_string(members.size()));
    spans_->attr(s, "transitional", had_trans ? "1" : "0");
    if (had_trans) {
      spans_->attr(s, "regular_deliveries", std::to_string(plan->regular_seqs.size()));
      spans_->attr(s, "trans_deliveries", std::to_string(plan->trans_seqs.size()));
      spans_->attr(s, "discarded", std::to_string(plan->discarded.size()));
    }
  }

  EVS_INFO("evs", "%s installed %s (%zu members)", to_string(self_).c_str(),
           to_string(next.id).c_str(), members.size());

  arm_token_loss_timer();
  const std::uint64_t epoch = epoch_;
  schedule_guarded(opts_.beacon_interval_us, [this, epoch] { beacon_tick(epoch); });

  // Feed packets that arrived for this configuration while we were still
  // finishing recovery (paper step 2 buffering).
  for (const RegularMsg& m : new_ring_buffer_) {
    if (m.ring == new_ring) core_->on_regular(m);
  }
  new_ring_buffer_.clear();
  std::optional<TokenMsg> buffered = std::move(buffered_token_);
  buffered_token_.reset();

  if (new_ring.rep == self_) {
    TokenMsg initial;
    initial.ring = new_ring;
    initial.rotation = 1;
    unicast_frame(self_, encode_msg(initial));
  } else if (buffered.has_value() && buffered->ring == new_ring) {
    handle_token(*buffered);
  }
  deliver_ready();
}

// --------------------------------------------------------------------------
// gather

void EvsNode::snapshot_old_ring() {
  EVS_ASSERT(core_.has_value());
  old_ring_ = core_->ring();
  // all_messages() is the post-GC suffix; old_received_ keeps the full
  // interval summary and old_gc_upto_ records how much of it is body-less.
  for (const RegularMsg& m : core_->all_messages()) old_msgs_.emplace(m.seq, m);
  old_received_.merge(core_->received());
  old_safe_upto_ = std::max(old_safe_upto_, core_->safe_upto());
  old_delivered_upto_ = std::max(old_delivered_upto_, core_->delivered_upto());
  old_gc_upto_ = std::max(old_gc_upto_, core_->gc_upto());
  core_.reset();
}

void EvsNode::enter_gather(std::vector<ProcessId> candidates,
                           const std::vector<ProcessId>* carry_fails) {
  if (state_ == State::Down) return;
  if (state_ == State::Operational) snapshot_old_ring();
  bump_epoch();
  net_.scheduler().cancel(token_loss_timer_);
  cancel_token_retransmit();
  recovery_.reset();
  my_exchange_.reset();
  acked_complete_ = false;
  new_ring_buffer_.clear();
  buffered_token_.reset();

  ++episode_;
  met_.gathers.inc();
  const SimTime now = net_.scheduler().now();
  close_episode_spans();  // a regather abandons any in-flight recovery spans
  gather_since_ = now;
  recovery_since_ = rotation_since_ = 0;
  if (spans_ != nullptr) {
    gather_span_ = spans_->begin(self_, "gather", now);
    spans_->attr(gather_span_, "episode", std::to_string(episode_));
  }
  gather_.emplace(self_, episode_, with_member(std::move(candidates), self_), now,
                  GatherState::Options{opts_.gather_fail_timeout_us,
                                       opts_.gather_fail_per_member_us, &metrics_});
  if (carry_fails != nullptr) gather_->adopt_fail_set(*carry_fails, now);
  consensus_since_ = 0;
  state_ = State::Gather;

  EVS_DEBUG("evs", "%s enters gather (episode %llu)", to_string(self_).c_str(),
            static_cast<unsigned long long>(episode_));

  repair_ring_seq();
  broadcast(encode_msg(gather_->make_join(ring_seq_)));
  const std::uint64_t epoch = epoch_;
  schedule_guarded(opts_.join_interval_us, [this, epoch] { join_tick(epoch); });
}

void EvsNode::join_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || state_ != State::Gather) return;
  const SimTime now = net_.scheduler().now();
  gather_->check_timeouts(now);
  broadcast(encode_msg(gather_->make_join(ring_seq_)));
  maybe_propose();
  if (epoch == epoch_ && state_ == State::Gather) {
    schedule_guarded(opts_.join_interval_us, [this, epoch] { join_tick(epoch); });
  }
}

void EvsNode::maybe_propose() {
  if (!gather_->consensus()) {
    consensus_since_ = 0;
    return;
  }
  const SimTime now = net_.scheduler().now();
  const std::vector<ProcessId> members = gather_->proposed_membership();
  if (gather_->representative() == self_) {
    repair_ring_seq();
    const RingSeq base = std::max(ring_seq_, gather_->max_ring_seq_seen());
    if (base >= kMaxRingSeq) {
      // The counter (ours or a gathered peer's) hit the plausibility
      // ceiling: proposing base + 1 would form a ring every codec rejects.
      // Only corruption gets a counter here; become a failed process.
      protocol_fail_stop("ring_seq at kMaxRingSeq");
      return;
    }
    ring_seq_ = base + 1;
    if (Status st = persist_ring_seq(); !st.ok()) {
      // Proposing a ring seq that might repeat after a crash would violate
      // per-process ring monotonicity; fail-stop instead.
      storage_fail_stop("propose ring_seq");
      return;
    }
    const RingId ring{ring_seq_, self_};
    EVS_DEBUG("evs", "%s proposes %s with %zu members", to_string(self_).c_str(),
              to_string(ring).c_str(), members.size());
    broadcast(encode_msg(FormRingMsg{self_, ring, members}));
    adopt_proposal(ring, members);
  } else if (consensus_since_ == 0) {
    consensus_since_ = now;
  } else if (now - consensus_since_ > opts_.consensus_wait_for(members.size())) {
    // The representative went quiet without proposing; divorce it so the
    // gather can terminate with a smaller membership.
    gather_->adopt_fail_set({gather_->representative()}, now);
    consensus_since_ = 0;
  }
}

// --------------------------------------------------------------------------
// recovery

ExchangeMsg EvsNode::make_exchange() const {
  ExchangeMsg e;
  e.sender = self_;
  e.proposed_ring = recovery_->proposed_ring();
  e.old_ring = old_ring_;
  e.received = old_received_;
  e.old_safe_upto = old_safe_upto_;
  e.delivered_upto = old_delivered_upto_;
  e.delivered_extra = old_delivered_extra_;
  e.gc_upto = old_gc_upto_;
  // Normalize the obligation copy: every peer's codec rejects an exchange
  // whose obligation set is not strictly sorted, and a rejected exchange is
  // re-broadcast forever (cluster-wide recovery livelock). The set's only
  // semantics is membership, so sort+unique loses nothing; a corrupted
  // entry merely adds a pid whose holes step 6 treats conservatively.
  e.obligation_set = obligation_set_;
  std::sort(e.obligation_set.begin(), e.obligation_set.end());
  e.obligation_set.erase(
      std::unique(e.obligation_set.begin(), e.obligation_set.end()),
      e.obligation_set.end());
  return e;
}

void EvsNode::adopt_proposal(RingId ring, std::vector<ProcessId> members) {
  if (!old_state_consistent()) {
    // The old-ring snapshot we are about to freeze into an exchange violates
    // invariants every peer checks at decode: they would silently discard
    // our exchanges and the whole component would spin through recovery
    // timeouts forever. Fail-stop so peers can converge without us.
    protocol_fail_stop("old-ring exchange state");
    return;
  }
  bump_epoch();
  ring_seq_ = std::max(ring_seq_, ring.seq);
  if (Status st = persist_ring_seq(); !st.ok()) {
    storage_fail_stop("adopt ring_seq");
    return;
  }
  state_ = State::Recovery;
  met_.recoveries.inc();

  const SimTime now = net_.scheduler().now();
  const std::size_t member_count = members.size();
  // Re-adopting under a fresh ring id abandons the previous proposal's spans.
  span_end(rebroadcast_span_);
  span_end(exchange_span_);
  span_end(recovery_span_);
  if (gather_since_ != 0) met_.gather_us.record(now - gather_since_);
  gather_since_ = 0;
  recovery_since_ = now;
  if (spans_ != nullptr) {
    if (gather_span_ != 0) {
      spans_->attr(gather_span_, "ring", to_string(ring));
      spans_->attr(gather_span_, "members", std::to_string(member_count));
    }
    span_end(gather_span_);
    recovery_span_ = spans_->begin(self_, "recovery", now);
    spans_->attr(recovery_span_, "ring", to_string(ring));
    spans_->attr(recovery_span_, "members", std::to_string(member_count));
    exchange_span_ = spans_->begin(self_, "recovery.exchange", now, recovery_span_);
  }

  recovery_.emplace(self_, ring, std::move(members));
  my_exchange_ = make_exchange();
  acked_complete_ = false;
  new_ring_buffer_.clear();
  buffered_token_.reset();
  recovery_deadline_ = net_.scheduler().now() + opts_.recovery_for(member_count);

  broadcast(encode_msg(*my_exchange_));
  const std::uint64_t epoch = epoch_;
  schedule_guarded(opts_.exchange_interval_us, [this, epoch] { exchange_tick(epoch); });
}

void EvsNode::exchange_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || state_ != State::Recovery) return;
  const SimTime now = net_.scheduler().now();
  if (now > recovery_deadline_) {
    EVS_WARN("evs", "%s recovery timed out; regathering", to_string(self_).c_str());
    enter_gather(recovery_->members(), nullptr);
    return;
  }
  broadcast(encode_msg(*my_exchange_));
  if (recovery_->proposed_ring().rep == self_) {
    broadcast(encode_msg(
        FormRingMsg{self_, recovery_->proposed_ring(), recovery_->members()}));
  }
  recovery_round();
  if (epoch == epoch_ && state_ == State::Recovery) {
    schedule_guarded(opts_.exchange_interval_us, [this, epoch] { exchange_tick(epoch); });
  }
}

void EvsNode::recovery_round() {
  if (!recovery_->have_all_exchanges()) return;
  if (spans_ != nullptr && exchange_span_ != 0) {
    // Steps 3-4 done: every member's exchange is in, so the transitional
    // membership is known. Step 5 (rebroadcast until complete) starts.
    span_end(exchange_span_);
    rebroadcast_span_ = spans_->begin(self_, "recovery.rebroadcast",
                                      net_.scheduler().now(), recovery_span_);
  }
  const auto trans = old_ring_.valid()
                         ? recovery_->transitional_members(old_ring_)
                         : with_member({}, self_);
  for (SeqNum s : recovery_->to_rebroadcast(trans, old_received_)) {
    if (s <= old_gc_upto_) {
      // GC proved every old-ring member received s, so only a corrupted
      // (CRC-colliding) ack can claim to lack it. The body is gone either
      // way; dropping the spurious request is the only safe answer.
      continue;
    }
    auto it = old_msgs_.find(s);
    EVS_ASSERT(it != old_msgs_.end());
    broadcast(encode_msg(RecoveryMsgMsg{self_, recovery_->proposed_ring(), it->second}));
  }
  const bool complete = recovery_->self_complete(trans, old_received_);
  if (complete && !acked_complete_) {
    // Step 5.c: persist, fold in the transitional members' obligations, and
    // only then acknowledge completion.
    if (!opts_.faults.ignore_obligations) {
      obligation_set_ = recovery_->merged_obligations(trans);
    }
    if (opts_.faults.ack_without_persist) {
      // Mutation under test: acknowledge without writing anything. A crash
      // after this ack recovers without the backlog the ack promised.
      acked_complete_ = true;
      span_end(rebroadcast_span_);
    } else if (Status st = persist_recovery_state(); st.ok()) {
      acked_complete_ = true;
      span_end(rebroadcast_span_);
    } else {
      // Never acknowledge what is not durable. The ack below still goes out
      // with complete=false; the next exchange tick retries the persist, and
      // the recovery timeout regathers if the store stays broken.
      met_.persist_retries.inc();
    }
  }
  broadcast(encode_msg(RecoveryAckMsg{self_, recovery_->proposed_ring(), old_ring_,
                                      old_received_, acked_complete_}));
}

void EvsNode::try_finish_recovery() {
  if (state_ != State::Recovery || !recovery_->have_all_exchanges() ||
      !acked_complete_ || !recovery_->all_complete()) {
    return;
  }
  const RingId new_ring = recovery_->proposed_ring();
  const std::vector<ProcessId> members = recovery_->members();
  if (old_ring_.valid()) {
    const auto trans = recovery_->transitional_members(old_ring_);
    const SeqSet uni = recovery_->union_received(trans);
    const auto lookup = [this](SeqNum s) -> const RegularMsg* {
      auto it = old_msgs_.find(s);
      return it == old_msgs_.end() ? nullptr : &it->second;
    };
    const std::vector<ProcessId> obligations =
        opts_.faults.ignore_obligations ? std::vector<ProcessId>{}
                                        : recovery_->merged_obligations(trans);
    Step6Plan plan = plan_step6(trans, uni, recovery_->global_safe_upto(trans),
                                obligations, lookup, old_delivered_upto_,
                                old_delivered_extra_, old_gc_upto_);
    if (opts_.faults.deliver_past_holes && !plan.discarded.empty()) {
      // Fault injection: omit step 6.a's causal-suspicion discard.
      plan.trans_seqs.insert(plan.trans_seqs.end(), plan.discarded.begin(),
                             plan.discarded.end());
      std::sort(plan.trans_seqs.begin(), plan.trans_seqs.end());
      plan.discarded.clear();
    }
    install_configuration(new_ring, members, &plan);
  } else {
    install_configuration(new_ring, members, nullptr);
  }
}

// --------------------------------------------------------------------------
// timers

Scheduler::Handle EvsNode::schedule_guarded(SimTime delay, std::function<void()> fn) {
  return net_.scheduler().schedule_after(
      delay, [alive = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
        // A crashed incarnation may be destroyed while this callback is
        // still queued; the expired token makes it a no-op instead of a
        // use-after-free.
        if (alive.expired()) return;
        fn();
      });
}

void EvsNode::arm_token_loss_timer() {
  net_.scheduler().cancel(token_loss_timer_);
  const std::uint64_t epoch = epoch_;
  token_loss_timer_ = schedule_guarded(
      opts_.token_loss_for(core_->members().size()), [this, epoch] {
    if (epoch != epoch_ || state_ != State::Operational) return;
    EVS_DEBUG("evs", "%s token loss on %s", to_string(self_).c_str(),
              to_string(core_->ring()).c_str());
    enter_gather(core_->members(), nullptr);
  });
}

void EvsNode::arm_token_retransmit() {
  net_.scheduler().cancel(token_retransmit_timer_);
  if (token_retransmits_left_ <= 0 || last_token_frame_.empty()) return;
  const std::uint64_t epoch = epoch_;
  token_retransmit_timer_ = schedule_guarded(
      opts_.token_retransmit_for(core_->members().size()), [this, epoch] {
        if (epoch != epoch_ || state_ != State::Operational) return;
        if (token_retransmits_left_ <= 0 || last_token_frame_.empty()) return;
        --token_retransmits_left_;
        met_.token_retransmits.inc();
        net_.unicast(self_, core_->next_in_ring(), last_token_frame_);
        arm_token_retransmit();
      });
}

void EvsNode::cancel_token_retransmit() {
  net_.scheduler().cancel(token_retransmit_timer_);
  token_retransmit_timer_ = Scheduler::Handle{};
  last_token_frame_.clear();
  token_retransmits_left_ = 0;
}

void EvsNode::beacon_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || state_ != State::Operational) return;
  broadcast(encode_msg(BeaconMsg{self_, core_->ring()}));
  schedule_guarded(opts_.beacon_interval_us, [this, epoch] { beacon_tick(epoch); });
}

// --------------------------------------------------------------------------
// packet handling

void EvsNode::broadcast(const std::vector<std::uint8_t>& bytes) {
  // Internal protocol messages are bounded well below kMaxFrameBody, so an
  // error here is a programming bug: keep the legacy hard-fail via value().
  net_.broadcast(self_, wire::seal_frame(bytes).value());
}

void EvsNode::unicast_frame(ProcessId to, const std::vector<std::uint8_t>& body) {
  net_.unicast(self_, to, wire::seal_frame(body).value());
}

void EvsNode::on_packet(const Packet& packet) {
  if (state_ == State::Down) return;
  // A datagram carries one or more frames (frame packing; the token may ride
  // behind piggybacked data frames). The network is adversarial
  // (src/sim/faults.hpp): frames may arrive truncated, extended or
  // byte-flipped. Reject — never crash on — anything that fails the frame
  // check or strict message validation; a cursor error abandons the rest of
  // the datagram (a garbled length field makes the remainder untrustworthy).
  wire::FrameCursor cursor(packet.payload());
  bool deliver = false;
  datagram_adoptions_ = 0;
  while (!cursor.done()) {
    if (state_ == State::Down) return;  // a frame can fail-stop the node
    const auto body = cursor.next();
    if (!body.ok()) {
      note_frame_reject(body.code());
      break;
    }
    if (peek_type(*body) == MsgType::Regular) {
      // Hot path: decode a view over the datagram (zero-copy); the packet's
      // DatagramRef pins the bytes for as long as the view is stored.
      auto view = try_decode_regular_view(*body, packet.data);
      if (!view.has_value()) {
        met_.rejected_decode.inc();
        continue;
      }
      deliver = handle_regular(std::move(*view)) || deliver;
      continue;
    }
    const auto msg = try_decode(*body);
    if (!msg.has_value()) {
      met_.rejected_decode.inc();
      continue;
    }
    if (const auto* t = std::get_if<TokenMsg>(&*msg)) {
      // Data frames packed ahead of a token frame are the sender's piggyback
      // (broadcasts never share a datagram with the token). Count only the
      // ones this node actually stored: a piggybacked copy whose broadcast
      // already arrived is a rejected duplicate, not an adoption.
      met_.piggybacked_msgs.inc(datagram_adoptions_);
      datagram_adoptions_ = 0;
      handle_token(*t);
    } else if (const auto* j = std::get_if<JoinMsg>(&*msg)) {
      if (packet.src != self_) handle_join(*j);
    } else if (const auto* f = std::get_if<FormRingMsg>(&*msg)) {
      if (packet.src != self_) handle_form_ring(*f);
    } else if (const auto* e = std::get_if<ExchangeMsg>(&*msg)) {
      handle_exchange(*e);
    } else if (const auto* r = std::get_if<RecoveryMsgMsg>(&*msg)) {
      handle_recovery_msg(*r);
    } else if (const auto* a = std::get_if<RecoveryAckMsg>(&*msg)) {
      handle_recovery_ack(*a);
    } else if (const auto* b = std::get_if<BeaconMsg>(&*msg)) {
      if (packet.src != self_) handle_beacon(*b);
    }
  }
  // One delivery pass for the whole datagram, however many frames it packed.
  if (deliver) deliver_ready();
}

bool EvsNode::stale_from_member(RingSeq seq, ProcessId sender) const {
  return seq < reg_config_.id.ring.seq &&
         std::binary_search(reg_config_.members.begin(), reg_config_.members.end(),
                            sender);
}

void EvsNode::deliver_ready() {
  if (state_ != State::Operational) return;
  if (!core_->state_consistent()) {
    // Delivering from corrupted ordering state would hand the application a
    // wrong total order (or walk the delivery loop into a GC'd hole and
    // abort). Fail-stop first; peers reconfigure around the silence.
    protocol_fail_stop("ordering state before delivery");
    return;
  }
  const auto ready = core_->drain_deliverable();
  if (ready.empty()) return;
  // Write-ahead: drain_deliverable() has already advanced delivered_upto, so
  // record the progress BEFORE the application callbacks run. A crash in
  // between loses these deliveries at a failed process (legal); the reverse
  // order would redeliver them to the next incarnation (Spec 1.4 forbids).
  if (Status st = persist_delivered_meta(); !st.ok()) {
    storage_fail_stop("delivered_meta");
    return;
  }
  met_.deliver_batch_size.record(static_cast<std::int64_t>(ready.size()));
  if (deliver_batch_handler_) {
    // Zero-copy fan-out: one callback for the whole batch, each view's
    // payload still pinned by the datagram (or send buffer) it arrived in.
    std::vector<DeliveryView> views;
    views.reserve(ready.size());
    for (const RegularMsgView& m : ready) {
      const Ord ord = ord_message_delivery(m.ring, m.seq);
      deliver_note(m, reg_config_, ord);
      views.push_back(DeliveryView{m.id, m.service, m.seq, m.payload,
                                   &reg_config_, ord});
    }
    deliver_batch_handler_(std::span<const DeliveryView>(views));
    return;
  }
  for (const RegularMsgView& m : ready) deliver_one(m, reg_config_);
}

bool EvsNode::handle_regular(RegularMsgView m) {
  switch (state_) {
    case State::Operational:
      if (m.ring == core_->ring()) {
        if (core_->on_regular(std::move(m))) {
          ++datagram_adoptions_;
          return true;  // caller runs one deliver_ready() per datagram
        }
        met_.duplicate_regulars.inc();
      } else if (stale_from_member(m.ring.seq, m.id.sender)) {
        // A delayed duplicate from a ring that preceded ours (ring seqs are
        // monotone per process, so a current member can no longer be
        // operational on a lower-seq ring). Not a merge signal.
        met_.stale_rejected.inc();
      } else {
        // Traffic from another ring in our component: the network merged.
        // The message itself is dropped; its sender's exchange covers it.
        enter_gather(with_member(core_->members(), m.id.sender), nullptr);
      }
      break;
    case State::Gather:
    case State::Recovery:
      // Cold paths own their bytes: the gather/recovery backlog must not pin
      // whole receive datagrams for the episode's duration.
      if (old_ring_.valid() && m.ring == old_ring_ && !old_received_.contains(m.seq)) {
        // Straggler from the old ring: keep it; it can only shrink the
        // rebroadcast volume. (Frozen exchanges keep step 6 deterministic.)
        old_received_.insert(m.seq);
        old_msgs_.emplace(m.seq, m.to_owned());
        ++datagram_adoptions_;
      } else if (state_ == State::Recovery && m.ring == recovery_->proposed_ring()) {
        new_ring_buffer_.push_back(m.to_owned());  // paper step 2 buffering
      }
      break;
    case State::Down: break;
  }
  return false;
}

void EvsNode::handle_token(const TokenMsg& t) {
  switch (state_) {
    case State::Operational: {
      if (t.ring != core_->ring()) return;
      if (core_->token_is_stale(t)) {
        // Duplicated or retransmitted token we already processed.
        met_.stale_tokens.inc();
        return;
      }
      // A fresh token came back around: the previous forward made it.
      if (!core_->state_consistent()) {
        // Stamping or acknowledging from corrupted counters would propagate
        // the damage into the shared token. Fail-stop instead; the broken
        // token visit looks like token loss to the rest of the ring.
        protocol_fail_stop("ordering state at token visit");
        return;
      }
      cancel_token_retransmit();
      met_.tokens_handled.inc();
      const SimTime tok_now = net_.scheduler().now();
      if (rotation_since_ != 0) {
        met_.token_rotation_us.record(tok_now - rotation_since_);
      }
      span_end(rotation_span_);
      OrderingCore::TokenResult result = core_->on_token(t, pending_);
      note_pending_sends();
      for (const RegularMsgView& m : result.new_messages) {
        met_.sent.inc();
        const Ord ord = ord_send_after(last_ord_);
        EVS_ASSERT_MSG(ord.ring_seq == reg_config_.id.ring.seq,
                       "send must follow an event of the current ring");
        EVS_ASSERT_MSG(ord.offset % kOrdGranule < kOrdGranule / 2,
                       "send slots between deliveries exhausted");
        last_ord_ = ord;
        if (trace_ != nullptr) {
          TraceEvent e;
          e.type = EventType::Send;
          e.process = self_;
          e.time = net_.scheduler().now();
          e.msg = m.id;
          e.service = m.service;
          e.seq = m.seq;
          e.config = reg_config_.id;
          e.ord = ord;
          trace_->record(std::move(e));
        }
      }
      // Frame packing: concatenate up to batch_max_frames regular frames
      // per broadcast datagram (soft-capped at batch_max_bytes), so a burst
      // drained at one token visit costs a handful of datagrams instead of
      // one per message. Frames are self-delimiting; receivers walk a
      // wire::FrameCursor.
      std::vector<std::vector<std::uint8_t>> bodies;
      bodies.reserve(result.to_broadcast.size());
      for (const RegularMsgView& m : result.to_broadcast) {
        bodies.push_back(encode_msg(m));
      }
      {
        std::vector<std::uint8_t> dgram;
        int frames = 0;
        const auto flush = [&] {
          if (frames == 0) return;
          if (frames >= 2) met_.datagrams_packed.inc();
          net_.broadcast(self_, std::move(dgram));
          dgram = {};
          frames = 0;
        };
        for (const auto& body : bodies) {
          if (frames > 0 &&
              (frames >= opts_.batch_max_frames ||
               dgram.size() + wire::kFrameHeaderBytes + body.size() >
                   opts_.batch_max_bytes)) {
            flush();
          }
          const Status st = wire::append_frame(dgram, body);
          EVS_ASSERT_MSG(st.ok(), "regular frame exceeds kMaxFrameBody");
          ++frames;
        }
        flush();
      }
      const ProcessId next = core_->next_in_ring();
      const std::vector<std::uint8_t> token_body = encode_msg(result.token_out);
      if (core_->members().size() == 1) {
        // Pace the self-token so an idle singleton does not spin the
        // simulator at network-delay granularity. Loopback is reliable, so
        // no retransmission guard (and no piggyback) is needed.
        const std::vector<std::uint8_t> token_frame =
            wire::seal_frame(token_body).value();
        const std::uint64_t epoch = epoch_;
        schedule_guarded(opts_.singleton_token_interval_us, [this, epoch, token_frame] {
          if (epoch != epoch_) return;
          net_.unicast(self_, self_, token_frame);
        });
      } else {
        // Token piggyback: re-carry the tail of this visit's data frames in
        // front of the token, in one datagram. The next holder then has the
        // newest messages in hand when it processes the token — its aru can
        // cover them this rotation even if the broadcast datagram races the
        // token or is lost — and a token retransmit re-carries the data.
        // The frames are duplicates of the broadcast above; the receiver's
        // duplicate check drops them for the price of a decode. The token
        // frame rides last and is never broadcast.
        std::vector<std::uint8_t> token_dgram;
        std::size_t tail = bodies.size();
        std::size_t bytes = wire::kFrameHeaderBytes + token_body.size();
        int count = 0;
        while (tail > 0 && count < opts_.batch_max_frames - 1) {
          const std::size_t add =
              wire::kFrameHeaderBytes + bodies[tail - 1].size();
          if (bytes + add > opts_.batch_max_bytes) break;
          bytes += add;
          --tail;
          ++count;
        }
        for (std::size_t i = tail; i < bodies.size(); ++i) {
          const Status st = wire::append_frame(token_dgram, bodies[i]);
          EVS_ASSERT(st.ok());
          // Sender-side carry count. Whether a carried frame was USEFUL is
          // the receiver's call: ordering.piggybacked_msgs counts only
          // frames the next holder adopted ahead of their broadcast copy.
          met_.piggyback_carried.inc();
        }
        {
          const Status st = wire::append_frame(token_dgram, token_body);
          EVS_ASSERT(st.ok());
        }
        if (count > 0) met_.datagrams_packed.inc();
        net_.unicast(self_, next, token_dgram);
        // Guard the forward against loss/corruption: resend the identical
        // token (data piggyback included) until a fresh one returns (the
        // receiver drops duplicates by rotation). Cheaper than the full
        // token-loss gather.
        last_token_frame_ = std::move(token_dgram);
        token_retransmits_left_ = opts_.token_retransmit_limit;
        arm_token_retransmit();
      }
      rotation_since_ = tok_now;
      if (spans_ != nullptr) {
        rotation_span_ = spans_->begin(self_, "token.rotation", tok_now);
      }
      arm_token_loss_timer();
      deliver_ready();
      break;
    }
    case State::Recovery:
      if (t.ring == recovery_->proposed_ring()) buffered_token_ = t;
      break;
    case State::Gather:
    case State::Down:
      break;
  }
}

void EvsNode::handle_join(const JoinMsg& j) {
  const SimTime now = net_.scheduler().now();
  switch (state_) {
    case State::Operational: {
      if (stale_from_member(j.max_ring_seq, j.sender)) {
        // A member of our ring adopted its proposal (seq >= ours) before we
        // installed, so its live joins always carry max_ring_seq >= ours.
        met_.stale_rejected.inc();
        return;
      }
      auto candidates = with_member(core_->members(), j.sender);
      enter_gather(std::move(candidates), nullptr);
      gather_->on_join(j, now);
      maybe_propose();
      break;
    }
    case State::Gather:
      gather_->on_join(j, now);
      maybe_propose();
      break;
    case State::Recovery: {
      const bool member = std::binary_search(recovery_->members().begin(),
                                             recovery_->members().end(), j.sender);
      if (member && join_proposal(j) == recovery_->members()) {
        // The sender missed our FormRing; the representative re-sends it
        // every exchange interval, so stay in recovery.
        return;
      }
      if (member && j.max_ring_seq < recovery_->proposed_ring().seq) {
        // A delayed duplicate from the gather episode that produced this
        // proposal (the proposal's seq exceeds every max_ring_seq gathered
        // then). Without this check, duplicated joins bounce the whole
        // component between Gather and Recovery indefinitely. A genuinely
        // diverged peer re-sends joins every join interval, and the
        // recovery timeout regathers if it never converges.
        met_.stale_rejected.inc();
        return;
      }
      auto candidates = recovery_->members();
      candidates = with_member(std::move(candidates), j.sender);
      enter_gather(std::move(candidates), nullptr);
      gather_->on_join(j, now);
      maybe_propose();
      break;
    }
    case State::Down: break;
  }
}

void EvsNode::handle_form_ring(const FormRingMsg& f) {
  const bool includes_self =
      std::binary_search(f.members.begin(), f.members.end(), self_);
  switch (state_) {
    case State::Gather:
      // A current-episode proposal is always numbered past every member's
      // advertised ring_seq_ (the representative takes max-seen + 1), and our
      // own ring_seq_ cannot change while we sit in Gather — so a FormRing at
      // or below it is a stale retransmission of an earlier episode. Real
      // transports surface these (a straggler can sit in the socket buffer
      // across a regather); adopting one would re-install a ring we already
      // delivered in, regressing the configuration-change total order.
      repair_ring_seq();
      if (includes_self && f.ring.seq > ring_seq_ &&
          f.members == gather_->proposed_membership()) {
        adopt_proposal(f.ring, f.members);
      }
      break;
    case State::Recovery:
      if (f.ring == recovery_->proposed_ring()) return;
      // Same staleness rule: a proposal not numbered past the one we hold is
      // a leftover from a superseded episode, not a restart.
      if (f.ring.seq <= recovery_->proposed_ring().seq) return;
      if (includes_self && f.members == recovery_->members()) {
        // Representative restarted the proposal under a fresh ring id.
        adopt_proposal(f.ring, f.members);
      } else if (includes_self) {
        enter_gather(f.members, nullptr);
      }
      break;
    case State::Operational:
      if (f.ring.seq > reg_config_.id.ring.seq) {
        enter_gather(with_member(core_->members(), f.sender), nullptr);
      }
      break;
    case State::Down: break;
  }
}

void EvsNode::handle_exchange(const ExchangeMsg& e) {
  switch (state_) {
    case State::Recovery:
      if (e.proposed_ring == recovery_->proposed_ring()) {
        if (recovery_->on_exchange(e)) {
          recovery_round();
          try_finish_recovery();
        }
      }
      break;
    case State::Operational:
      if (e.proposed_ring == reg_config_.id.ring && e.sender != self_) {
        // We already installed this ring; a peer is still waiting for our
        // completion. Re-acknowledge so it can finish too.
        broadcast(encode_msg(
            RecoveryAckMsg{self_, reg_config_.id.ring, RingId{}, SeqSet{}, true}));
      }
      break;
    case State::Gather:
    case State::Down:
      break;
  }
}

void EvsNode::handle_recovery_msg(const RecoveryMsgMsg& r) {
  if (state_ != State::Recovery) return;
  if (r.proposed_ring != recovery_->proposed_ring()) return;
  if (!old_ring_.valid() || r.inner.ring != old_ring_) return;
  if (old_received_.contains(r.inner.seq)) return;
  old_received_.insert(r.inner.seq);
  old_msgs_.emplace(r.inner.seq, r.inner);
}

void EvsNode::handle_recovery_ack(const RecoveryAckMsg& a) {
  if (state_ != State::Recovery) return;
  if (a.proposed_ring != recovery_->proposed_ring()) return;
  recovery_->on_ack(a);
  try_finish_recovery();
}

void EvsNode::handle_beacon(const BeaconMsg& b) {
  if (state_ != State::Operational) return;
  if (b.ring == core_->ring()) return;
  if (stale_from_member(b.ring.seq, b.sender)) {
    met_.stale_rejected.inc();
    return;
  }
  enter_gather(with_member(core_->members(), b.sender), nullptr);
}

}  // namespace evs
