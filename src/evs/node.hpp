// EvsNode: a process running the extended virtual synchrony protocol stack.
//
// This is the library's primary public API. One EvsNode is one process of
// the paper's model. It composes:
//   * the total ordering substrate (totem/OrderingCore),
//   * the membership gather (member/GatherState),
//   * the EVS recovery algorithm (evs/RecoveryEngine + plan_step6),
// into a single state machine driven by the simulated network and timers.
//
// Lifecycle (matches the paper's failure model):
//   EvsNode n(pid, net, store, &trace);
//   n.start();          // installs a singleton regular configuration,
//                       // recovering any persisted backlog first, then
//                       // announces itself so components can merge
//   n.send(Service::Safe, payload);
//   n.crash();          // fail_p(c): volatile state lost, store survives
//   EvsNode n2(pid, net, store, &trace);  // recovery: same id, same store
//   n2.start();
//
// Applications observe two callbacks, registered with the uniform setters
// shared by every node layer (EvsNode, GroupNode, FragmentNode, VsNode):
//   set_on_deliver(h)        - a message delivery, tagged with the
//                              configuration (regular or transitional) it is
//                              delivered in
//   set_on_config_change(h)  - a configuration change message (Section 2)
//
// Every observable event is also appended to the TraceLog (if provided) for
// machine checking against Specifications 1-7, counted in the node's
// obs::MetricsRegistry, and — when a SpanSink is attached — traced as spans
// (gather / recovery / token rotation episodes; see src/obs/span.hpp).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "evs/config.hpp"
#include "evs/recovery.hpp"
#include "member/membership.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "spec/trace.hpp"
#include "storage/stable_store.hpp"
#include "totem/messages.hpp"
#include "totem/ordering.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace evs {

class EvsNode final : public Endpoint {
 public:
  /// Deliberate protocol corruption, used by the mutation tests to prove
  /// the specification checker catches real protocol bugs end to end
  /// (tests/property/mutation_test.cpp). Never enable outside tests.
  struct FaultInjection {
    /// Omit step 5.c: obligation sets are not merged or persisted, so
    /// messages past a hole lose their delivery guarantee (breaks Specs 3,
    /// 5, 6.3 in partition scenarios).
    bool ignore_obligations{false};
    /// Omit step 6.a: deliver available messages past holes even from
    /// non-obligated senders (breaks Spec 5 — causally suspect delivery).
    bool deliver_past_holes{false};
    /// Ignore the acknowledgment horizon: deliver safe messages as soon as
    /// they are ordered (breaks Spec 7.1 when a partition interrupts).
    bool skip_safe_horizon{false};
    /// Omit the persist half of step 5.c: acknowledge recovery completion
    /// without writing the backlog and obligation set to stable storage. A
    /// crash after the ack then recovers without what the ack promised
    /// (breaks Specs 3/5/7.1 in crash-during-recovery scenarios — the
    /// mutation the crash-point sweep must catch).
    bool ack_without_persist{false};
  };

  struct Options {
    // Timeout profile. Each protocol timeout has a flat base plus a
    // per-member slope: the effective value for a ring/gather of n members
    // is base + per_member * (n - 1), computed by the *_for(n) helpers
    // below. The slope models the protocol's real cost growth — a token
    // rotation visits n processes, a gather floods n joins per interval, an
    // exchange round is n broadcasts — so a profile tuned at n=5 neither
    // falsely times out at n=100 nor waits 20x too long at n=3. The
    // defaults keep the historical flat values as the n=1 baseline; see
    // DESIGN.md "Timer scaling" for the derivation.
    SimTime token_loss_timeout_us{12'000};
    SimTime token_loss_per_member_us{1'000};
    SimTime beacon_interval_us{5'000};
    SimTime join_interval_us{1'000};
    SimTime gather_fail_timeout_us{8'000};
    SimTime gather_fail_per_member_us{250};
    SimTime consensus_wait_timeout_us{12'000};  ///< waiting for FormRing
    SimTime consensus_wait_per_member_us{300};
    SimTime exchange_interval_us{1'000};
    SimTime recovery_timeout_us{40'000};
    SimTime recovery_per_member_us{1'000};
    SimTime singleton_token_interval_us{1'000};
    /// Totem-style token retransmission: after forwarding the token, resend
    /// the same token up to `token_retransmit_limit` times at this interval
    /// unless a fresh token returns first. Keeps the ring alive through
    /// sustained token loss/corruption without a full membership gather
    /// (limit * interval must stay below token_loss_timeout_us).
    SimTime token_retransmit_interval_us{2'500};
    SimTime token_retransmit_per_member_us{300};
    int token_retransmit_limit{3};
    /// Largest payload send() accepts. Must leave frame headroom below
    /// wire::kMaxFrameBody; oversized sends fail with payload_too_large.
    std::size_t max_payload_bytes{64u * 1024};
    /// Cap on the send queue: when the application outruns the token,
    /// send() fails fast with Errc::backpressure instead of queueing
    /// without bound. The drain callback (set_on_send_drain) fires once the
    /// queue falls back to half the cap, so producers can resume.
    std::size_t max_pending_sends{1024};
    /// Frame packing: up to this many regular-message frames share one
    /// broadcast datagram at a token visit (frames are self-delimiting, so
    /// packing is concatenation; receivers walk a wire::FrameCursor). 1
    /// restores the pre-batching one-frame-per-datagram wire shape — the
    /// sim-determinism test proves delivery order is identical either way.
    int batch_max_frames{16};
    /// Soft byte ceiling for a packed datagram. A single frame larger than
    /// this still travels alone; the ceiling only stops further packing.
    /// Keep below the transport's max datagram size (60 KiB for the live
    /// UDP transport).
    std::size_t batch_max_bytes{48u * 1024};
    OrderingCore::Options ordering{};
    FaultInjection faults{};

    // Effective (size-scaled) timeouts for an n-member ring or gather.
    SimTime token_loss_for(std::size_t n) const {
      return token_loss_timeout_us + token_loss_per_member_us * slope(n);
    }
    SimTime token_retransmit_for(std::size_t n) const {
      return token_retransmit_interval_us + token_retransmit_per_member_us * slope(n);
    }
    SimTime gather_fail_for(std::size_t n) const {
      return gather_fail_timeout_us + gather_fail_per_member_us * slope(n);
    }
    SimTime consensus_wait_for(std::size_t n) const {
      return consensus_wait_timeout_us + consensus_wait_per_member_us * slope(n);
    }
    SimTime recovery_for(std::size_t n) const {
      return recovery_timeout_us + recovery_per_member_us * slope(n);
    }

    /// A profile pre-stretched for rings of expected size n: besides the
    /// per-member slopes (which apply automatically), the periodic *sender*
    /// intervals — beacons, join floods, exchange rebroadcasts — are dilated
    /// so that per-interval traffic stays O(n) packets instead of O(n) per
    /// node (O(n^2) total). Use for large simulated clusters (n >= ~50).
    static Options scaled_for(std::size_t n);

    /// Check the option combination for internal consistency: every timeout
    /// positive, the token retransmit burst shorter than the token loss
    /// timeout (at every ring size, which the per-member slopes must also
    /// respect), gather/recovery tick intervals shorter than the timeouts
    /// that bound them, payload limit within the frame format. Returns
    /// Errc::invalid_options naming the violated rule. The EvsNode
    /// constructor asserts this, so a misconfigured node fails at
    /// construction instead of livelocking mid-simulation.
    Status validate() const;

   private:
    static SimTime slope(std::size_t n) {
      return n > 1 ? static_cast<SimTime>(n - 1) : 0;
    }
  };

  enum class State { Down, Operational, Gather, Recovery };

  struct Delivery {
    MsgId id;
    Service service{Service::Agreed};
    SeqNum seq{0};
    std::vector<std::uint8_t> payload;
    Configuration config;  ///< regular or transitional configuration
    Ord ord;
  };

  /// Snapshot of the node's "evs.*" counters. The obs::MetricsRegistry is
  /// the source of truth; this struct is assembled on demand by stats() for
  /// ergonomic field access in tests and benches.
  struct Stats {
    std::uint64_t sent{0};
    std::uint64_t delivered{0};
    std::uint64_t delivered_transitional{0};
    std::uint64_t conf_changes{0};
    std::uint64_t gathers{0};
    std::uint64_t recoveries{0};
    std::uint64_t discarded{0};
    std::uint64_t tokens_handled{0};
    // --- adversarial-input hardening (see src/sim/faults.hpp) ---
    std::uint64_t rejected_frames{0};      ///< frames failing length/CRC check
    std::uint64_t rejected_decode{0};      ///< frames whose body fails try_decode
    std::uint64_t stale_rejected{0};       ///< duplicated/stale cross-ring traffic
    std::uint64_t duplicate_regulars{0};   ///< duplicate regular messages ignored
    std::uint64_t stale_tokens{0};         ///< stale/duplicate tokens ignored
    std::uint64_t token_retransmits{0};    ///< tokens re-sent by the loss guard
    std::uint64_t send_errors{0};          ///< send() calls rejected with a Status
    std::uint64_t backpressure_rejections{0};  ///< sends refused at the queue cap
    // --- datagram batching (frame packing + token piggyback) ---
    std::uint64_t datagrams_packed{0};   ///< broadcast datagrams carrying >= 2 frames
    std::uint64_t piggybacked_msgs{0};   ///< piggybacked frames ADOPTED by this
                                         ///< receiver ahead of their broadcast copy
    std::uint64_t piggyback_carried{0};  ///< data frames this sender re-carried
                                         ///< in front of a forwarded token
    // --- fallible stable storage (see storage/stable_store.hpp) ---
    std::uint64_t storage_fail_stops{0};  ///< persists whose failure stopped the node
    std::uint64_t persist_retries{0};     ///< step-5.c acks aborted by a failed persist
    // --- self-stabilization guards (see DESIGN.md "State-corruption fault
    // model"): detected volatile-state corruption either repaired in place
    // or converted into a fail-stop ---
    std::uint64_t state_fail_stops{0};  ///< inconsistent volatile state -> crash
    std::uint64_t ring_seq_repairs{0};  ///< ring_seq_ re-derived from installed ring
  };

  /// Zero-copy delivery record: `payload` points into the datagram (or
  /// send-side buffer) the message arrived in, pinned for the duration of
  /// the callback. Copy what must outlive the callback (Delivery's owned
  /// payload is exactly that copy).
  struct DeliveryView {
    MsgId id;
    Service service{Service::Agreed};
    SeqNum seq{0};
    std::span<const std::uint8_t> payload;
    const Configuration* config{nullptr};
    Ord ord;
  };

  using DeliverHandler = std::function<void(const Delivery&)>;
  /// One callback per deliverable batch (a token visit or packed datagram
  /// typically readies several messages at once). Views are valid only for
  /// the duration of the call.
  using DeliverBatchHandler = std::function<void(std::span<const DeliveryView>)>;
  using ConfigHandler = std::function<void(const Configuration&)>;

  EvsNode(ProcessId id, Transport& net, StableStore& store, TraceLog* trace = nullptr)
      : EvsNode(id, net, store, trace, Options{}) {}
  EvsNode(ProcessId id, Transport& net, StableStore& store, TraceLog* trace,
          Options options);
  ~EvsNode() override;

  EvsNode(const EvsNode&) = delete;
  EvsNode& operator=(const EvsNode&) = delete;

  /// Register the delivery callback (uniform setter name across all node
  /// layers: EvsNode, GroupNode, FragmentNode, VsNode). The LATEST
  /// registration owns regular-configuration deliveries: registering a
  /// per-message handler clears any batch handler, so a layer stacked on
  /// this node (VsNode, GroupNode, an application agent) that only knows
  /// the per-message form takes the stream over from a harness-installed
  /// batch handler instead of being silently starved by it.
  void set_on_deliver(DeliverHandler h) {
    deliver_handler_ = std::move(h);
    deliver_batch_handler_ = nullptr;
  }
  /// Register the zero-copy batch delivery callback. When set, it receives
  /// regular-configuration deliveries instead of the per-message handler
  /// (recovery-time transitional deliveries still use the per-message
  /// handler — cold path, owned payloads). Like set_on_deliver, the latest
  /// registration wins for regular deliveries.
  void set_on_deliver_batch(DeliverBatchHandler h) {
    deliver_batch_handler_ = std::move(h);
  }
  /// Register the configuration-change callback.
  void set_on_config_change(ConfigHandler h) { config_handler_ = std::move(h); }
  /// Register a SECOND configuration-change observer, invoked after the
  /// primary handler on every configuration install. A harness typically
  /// owns the primary slot (its sink records installs); an application
  /// agent stacked on the same node (e.g. apps::KvShardedNode's state
  /// transfer) observes through this slot without clobbering it. Single
  /// slot, latest registration wins.
  void set_on_config_change_observer(ConfigHandler h) {
    config_observer_ = std::move(h);
  }

  /// Boot (fresh start or recovery with intact stable storage). Installs a
  /// singleton regular configuration — delivering the persisted backlog in a
  /// transitional configuration first if the previous incarnation died with
  /// recovery obligations — and announces presence to the component.
  void start();

  /// Fail (fail_p(c)): volatile state vanishes, timers stop, the endpoint
  /// detaches. The stable store is untouched; construct a fresh EvsNode on
  /// the same store to model recovery.
  void crash();

  /// Queue an application message. It is stamped into the total order at
  /// the next token visit of the current (or next) regular configuration;
  /// that stamping is the model's send_p(m, c) event. Fails with
  /// Errc::not_running on a crashed node, Errc::payload_too_large when the
  /// payload exceeds Options::max_payload_bytes, and Errc::backpressure
  /// when the pending queue is at Options::max_pending_sends.
  Expected<MsgId> send(Service service, std::vector<std::uint8_t> payload);

  /// Queue a burst of messages with one bookkeeping pass; the whole batch is
  /// accepted or rejected atomically (Errc::backpressure when it does not
  /// fit under max_pending_sends, payload_too_large if any payload is over
  /// the limit — nothing is queued on failure). With frame packing, a burst
  /// queued together drains in a handful of datagrams per token visit.
  Expected<std::vector<MsgId>> send_batch(Service service,
                                          std::vector<std::vector<std::uint8_t>> payloads);

  /// Register the backpressure drain callback: after send() has rejected
  /// with Errc::backpressure, it fires once when the pending queue drains
  /// back to half of max_pending_sends (hysteresis, so producers resuming
  /// at the edge don't thrash between one accepted send and the next
  /// rejection).
  void set_on_send_drain(std::function<void()> h) { drain_handler_ = std::move(h); }

  State state() const { return state_; }
  bool running() const { return state_ != State::Down; }
  ProcessId id() const { return self_; }

  /// The last installed regular configuration.
  const Configuration& config() const { return reg_config_; }

  /// The options the node was constructed with (e.g. payload limits, so an
  /// application layered on the node can size its own payloads to fit).
  const Options& options() const { return opts_; }

  /// The transport's scheduler — virtual time in the simulator, the loop
  /// thread's wall-clock timer wheel live. Lets an application agent run
  /// its own timers in the same time domain as the node's protocol timers.
  Scheduler& scheduler() { return net_.scheduler(); }

  Stats stats() const;
  std::size_t pending_sends() const { return pending_.size(); }

  /// The node's metrics: "evs.*" plus the instruments of its embedded
  /// OrderingCore ("ordering.*") and GatherState ("member.*"). Counters are
  /// cumulative across configuration installs and gather episodes.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attach (or detach, with nullptr) a span sink. Gather, recovery and
  /// token-rotation episodes are traced as spans while attached; a null
  /// sink costs one pointer test per episode boundary.
  void set_span_sink(obs::SpanSink* sink) { spans_ = sink; }

  // Endpoint:
  void on_packet(const Packet& packet) override;

 private:
  friend struct NodeIntrospect;  // test-only state perturbation (testkit/corrupt)

  // --- state transitions ---
  void install_configuration(RingId new_ring, std::vector<ProcessId> members,
                             const Step6Plan* plan);
  void enter_gather(std::vector<ProcessId> candidates,
                    const std::vector<ProcessId>* carry_fails);
  void adopt_proposal(RingId ring, std::vector<ProcessId> members);
  void try_finish_recovery();
  void recovery_local_plan_and_install(RingId new_ring);

  // --- packet handlers ---
  /// Returns true when the message was accepted into the current ring's
  /// ordering core and a deliver_ready() pass is warranted — on_packet
  /// defers that pass until the whole datagram's frames are absorbed.
  bool handle_regular(RegularMsgView m);
  void handle_token(const TokenMsg& t);
  void handle_join(const JoinMsg& j);
  void handle_form_ring(const FormRingMsg& f);
  void handle_exchange(const ExchangeMsg& e);
  void handle_recovery_msg(const RecoveryMsgMsg& r);
  void handle_recovery_ack(const RecoveryAckMsg& a);
  void handle_beacon(const BeaconMsg& b);

  // --- timers ---
  /// Schedule a callback that is dropped if this node object has been
  /// destroyed by fire time (a crashed incarnation may be deleted while its
  /// timers are still queued in the scheduler).
  Scheduler::Handle schedule_guarded(SimTime delay, std::function<void()> fn);
  void arm_token_loss_timer();
  void arm_token_retransmit();
  void cancel_token_retransmit();
  void beacon_tick(std::uint64_t epoch);
  void join_tick(std::uint64_t epoch);
  void exchange_tick(std::uint64_t epoch);
  void bump_epoch() { ++epoch_; }

  // --- operational helpers ---
  void deliver_ready();
  /// Per-delivery bookkeeping (metrics, ord advance, trace) without the
  /// application callback — the batch path does this per message, then
  /// invokes the batch handler once.
  void deliver_note(const RegularMsgView& m, const Configuration& config, Ord ord);
  void deliver_one(const RegularMsgView& m, const Configuration& config);
  /// True if traffic tagged with ring seq `seq` from `sender` must predate
  /// our current regular configuration: ring seqs are monotone per process
  /// (persisted across incarnations), so a member of our installed ring can
  /// never again act on a lower-seq ring. Such packets are delayed
  /// duplicates, not merge signals.
  bool stale_from_member(RingSeq seq, ProcessId sender) const;
  /// Refresh the evs.pending_sends gauge after a pending_ mutation and fire
  /// the drain callback when backpressure hysteresis clears.
  void note_pending_sends();
  void emit_conf_change(const Configuration& config, Ord ord);
  void broadcast(const std::vector<std::uint8_t>& bytes);
  void unicast_frame(ProcessId to, const std::vector<std::uint8_t>& body);
  void snapshot_old_ring();
  void maybe_propose();
  void recovery_round();  ///< rebroadcasts + ack within exchange_tick
  ExchangeMsg make_exchange() const;

  // --- observability helpers ---
  /// Count an open_frame rejection under both the aggregate counter and a
  /// per-cause counter ("evs.rejected_frames.<cause>"). Cold path only.
  void note_frame_reject(Errc cause);
  void span_end(obs::SpanId& id);  ///< end + clear if a sink is attached
  void close_episode_spans();      ///< end any open gather/recovery spans

  // --- persistence ---
  // Every persist is fallible (see storage/stable_store.hpp). The policy,
  // derived from the paper's persist-before-acknowledge ordering:
  //   * step 5.c (persist_recovery_state) failing aborts the completion
  //     acknowledgement — the next exchange tick retries, and the recovery
  //     timeout regathers if the store stays broken (never ack-without-persist);
  //   * any other persist failing is a fail-stop (storage_fail_stop): the
  //     node cannot uphold its durable obligations, so it becomes a crashed
  //     process — exactly the failure mode the protocol already tolerates.
  [[nodiscard]] Status persist_ring_seq();
  [[nodiscard]] Status persist_install(const Configuration& config);
  [[nodiscard]] Status persist_recovery_state();
  [[nodiscard]] Status persist_delivered_meta();
  [[nodiscard]] Status load_persisted();
  /// Stable storage failed under a must-persist write: count it and turn
  /// this node into a failed process (crash), or tear down a partial boot.
  void storage_fail_stop(const char* where);

  /// Volatile protocol state failed an internal consistency check that
  /// cannot be repaired locally (the self-stabilization guards; see DESIGN.md
  /// "State-corruption fault model"). Counts evs.state_fail_stops and turns
  /// the node into a failed process — fail-stop instead of propagating
  /// corrupted state into the agreed total order.
  void protocol_fail_stop(const char* what);

  /// Self-stabilizing repair: ring_seq_ must never trail the installed
  /// regular ring's seq (ring seqs are persisted, monotone per process). A
  /// regressed counter — bit rot, bad restore — would let this node propose
  /// or adopt a ring below one it already delivered in, regressing the
  /// configuration-change total order. Re-derives the floor from reg_config_
  /// and counts evs.ring_seq_repairs. Called wherever ring_seq_ feeds a
  /// staleness or proposal decision.
  void repair_ring_seq();

  /// Consistency of the snapshotted old-ring backlog fields, checked before
  /// they are frozen into an ExchangeMsg: the same invariants read_exchange
  /// enforces on the wire, so a corrupted node fail-stops here rather than
  /// broadcasting exchanges every peer rejects (a cluster-wide livelock).
  bool old_state_consistent() const;

  // identity / environment
  ProcessId self_;
  Transport& net_;
  StableStore& store_;
  TraceLog* trace_;
  Options opts_;

  State state_{State::Down};
  std::uint64_t epoch_{0};  ///< invalidates stale timer callbacks
  /// Lifetime token observed (weakly) by every scheduled callback.
  std::shared_ptr<char> alive_{std::make_shared<char>(0)};

  // ring / ordering (Operational)
  std::optional<OrderingCore> core_;
  Configuration reg_config_;  ///< last installed regular configuration
  RingSeq ring_seq_{0};       ///< highest ring seq ever seen/used (persisted)
  std::deque<PendingSend> pending_;
  std::uint64_t msg_counter_{0};
  Scheduler::Handle token_loss_timer_{};
  // Token retransmission state: the sealed frame of the last token we
  // forwarded, resent while no fresh token has come back around the ring.
  std::vector<std::uint8_t> last_token_frame_;
  int token_retransmits_left_{0};
  Scheduler::Handle token_retransmit_timer_{};

  // old-ring backlog (survives into Gather/Recovery; cleared on install).
  // old_msgs_ holds only bodies above old_gc_upto_; old_received_ still
  // summarizes everything, including the GC'd prefix.
  RingId old_ring_{};
  std::map<SeqNum, RegularMsg> old_msgs_;
  SeqSet old_received_;
  SeqNum old_safe_upto_{0};
  SeqNum old_delivered_upto_{0};
  SeqNum old_gc_upto_{0};
  SeqSet old_delivered_extra_;
  std::vector<ProcessId> obligation_set_;  // sorted

  // gather
  std::optional<GatherState> gather_;
  std::uint64_t episode_{0};
  SimTime consensus_since_{0};  ///< when we first saw consensus (awaiting FormRing)

  // recovery
  std::optional<RecoveryEngine> recovery_;
  std::optional<ExchangeMsg> my_exchange_;  ///< frozen for this proposal
  bool acked_complete_{false};
  SimTime recovery_deadline_{0};
  std::vector<RegularMsg> new_ring_buffer_;       ///< paper step 2 buffering
  std::optional<TokenMsg> buffered_token_;

  // Regular frames newly stored while walking the current datagram's frames.
  // If a token frame follows in the same datagram, those frames rode the
  // piggyback (broadcasts never share a datagram with the token) and the
  // count becomes ordering.piggybacked_msgs; reset at every datagram.
  std::uint64_t datagram_adoptions_{0};

  /// Ord of this incarnation's most recent ord-carrying event; send events
  /// are assigned ord_send_after(last_ord_).
  Ord last_ord_{};

  // callbacks
  DeliverHandler deliver_handler_;
  DeliverBatchHandler deliver_batch_handler_;
  ConfigHandler config_handler_;
  ConfigHandler config_observer_;
  std::function<void()> drain_handler_;
  bool backpressured_{false};  ///< a send was rejected since the last drain

  // observability. Met caches instrument handles so the hot paths do one
  // add with no name lookup; the registry owns the values.
  struct Met {
    obs::Counter& sent;
    obs::Counter& delivered;
    obs::Counter& delivered_transitional;
    obs::Counter& conf_changes;
    obs::Counter& gathers;
    obs::Counter& recoveries;
    obs::Counter& discarded;
    obs::Counter& tokens_handled;
    obs::Counter& rejected_frames;
    obs::Counter& rejected_decode;
    obs::Counter& stale_rejected;
    obs::Counter& duplicate_regulars;
    obs::Counter& stale_tokens;
    obs::Counter& token_retransmits;
    obs::Counter& send_errors;
    obs::Counter& backpressure_rejections;
    obs::Counter& datagrams_packed;   ///< net.datagrams_packed
    obs::Counter& piggybacked_msgs;   ///< ordering.piggybacked_msgs (receiver adoptions)
    obs::Counter& piggyback_carried;  ///< ordering.piggyback_carried (sender carries)
    obs::Counter& storage_fail_stops;
    obs::Counter& persist_retries;
    obs::Counter& state_fail_stops;
    obs::Counter& ring_seq_repairs;
    obs::Gauge& pending_sends;          ///< current send-queue depth
    obs::Histogram& gather_us;          ///< enter_gather -> adopted proposal
    obs::Histogram& recovery_us;        ///< adopted proposal -> install
    obs::Histogram& token_rotation_us;  ///< token forward -> fresh return
    obs::Histogram& deliver_batch_size; ///< messages per deliver_ready pass
    explicit Met(obs::MetricsRegistry& r);
  };

  obs::MetricsRegistry metrics_;
  Met met_{metrics_};
  obs::SpanSink* spans_{nullptr};
  obs::SpanId gather_span_{0};
  obs::SpanId recovery_span_{0};
  obs::SpanId exchange_span_{0};     ///< child: paper steps 3-4
  obs::SpanId rebroadcast_span_{0};  ///< child: paper step 5
  obs::SpanId rotation_span_{0};     ///< current token rotation
  SimTime gather_since_{0};    ///< 0 = no gather episode in flight
  SimTime recovery_since_{0};  ///< 0 = no recovery episode in flight
  SimTime rotation_since_{0};  ///< 0 = no token rotation in flight
};

const char* to_string(EvsNode::State s);

/// Stable-storage key space of ring r's message backlog
/// ("bmsg/<ring.seq>.<ring.rep>/<seq>", every number fixed-width zero-padded
/// hex). Exposed so tests can pin the prefix-freedom property: the prefix of
/// one ring is never a string prefix of another's, so garbage-collecting
/// configuration N's backlog cannot erase configuration N0's records.
std::string backlog_prefix(const RingId& ring);
std::string backlog_msg_key(const RingId& ring, SeqNum seq);

}  // namespace evs
