// Configurations: the unit of membership agreement in extended virtual
// synchrony (Section 2 of the paper).
//
// A *regular* configuration is identified by its ring id — a pair
// (ring_seq, representative) produced by the membership algorithm, where
// ring_seq is strictly larger than every ring sequence number any member has
// ever seen (persisted across crashes), so ids are unique system-wide and
// totally ordered.
//
// A *transitional* configuration sits between one regular configuration and
// the next at a given process; it is identified by the pair of ring ids
// (prior regular ring, next regular ring). Two components of a partitioned
// regular configuration produce *different* transitional configurations
// because they install different next rings.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"
#include "wire/codec.hpp"

namespace evs {

/// Plausibility ceiling on ring sequence numbers. Ring seqs only ever grow
/// by +1 per configuration install, so no healthy system gets anywhere near
/// 2^62 — a value above the ceiling can only come from corrupted volatile
/// state, a forged packet, or rotted storage. Enforcing the bound at the
/// codec (RingId::valid, JoinMsg::max_ring_seq) and at the proposal site
/// (EvsNode fail-stops before proposing past it) keeps a wrapped or poisoned
/// counter from propagating: peers adopt max-seen + 1, so one absurd value
/// would otherwise stick to the whole system forever and eventually overflow
/// into a ring-seq regression, which the delivery order cannot survive.
inline constexpr RingSeq kMaxRingSeq = 1ull << 62;

/// Identifier of a token ring == identifier of a regular configuration.
struct RingId {
  RingSeq seq{0};
  ProcessId rep{};

  constexpr auto operator<=>(const RingId&) const = default;
  bool valid() const { return seq != 0 && seq <= kMaxRingSeq; }
};

std::string to_string(const RingId& r);

struct ConfigId {
  RingId ring;        ///< the (new) regular ring
  RingId prior_ring;  ///< for transitional configs: the preceding regular ring
  bool transitional{false};

  constexpr auto operator<=>(const ConfigId&) const = default;

  static ConfigId regular(RingId ring) { return ConfigId{ring, RingId{}, false}; }

  static ConfigId trans(RingId prior, RingId next) {
    return ConfigId{next, prior, true};
  }

  bool valid() const { return ring.valid(); }
};

std::string to_string(const ConfigId& c);

/// A configuration: identifier plus agreed membership (sorted by id).
struct Configuration {
  ConfigId id;
  std::vector<ProcessId> members;

  bool contains(ProcessId p) const;
  bool operator==(const Configuration&) const = default;
};

std::string to_string(const Configuration& c);

/// Globally unique application-level message identity: the sender plus a
/// per-sender counter. Independent of the ring sequence number the ordering
/// substrate later assigns.
struct MsgId {
  ProcessId sender{};
  std::uint64_t counter{0};

  constexpr auto operator<=>(const MsgId&) const = default;
  bool valid() const { return counter != 0; }
};

std::string to_string(const MsgId& m);

// --- ord function -----------------------------------------------------------
//
// The paper's ord function maps events to a virtual total order (Spec 6).
// We realize it as lexicographic (ring id, offset) with a granule of
// kOrdGranule per sequence number:
//   deliver(m)            -> (origin ring, seq * G)
//   deliver_conf(trans)   -> (prior ring,  cutoff * G + G/2)
//   deliver_conf(regular) -> (new ring,    0)
//   send(m)               -> one past the sender's previous event's ord
// Send events cannot be anchored to their own sequence number: a process may
// stamp seq 30 at a token visit and only afterwards deliver seq 14, yet
// program order (Spec 1.2) makes that send precede the delivery, so
// ord(send) must fall *before every delivery that follows it locally* — i.e.
// just after the sender's last event. The G-sized gap between consecutive
// delivery ords leaves room for G/2-1 such send slots (flow control caps
// sends per token visit far below that). The spec checker *verifies* all of
// this against Specs 6.1-6.3; the packing here is just the implementation's
// proposal.

inline constexpr std::uint64_t kOrdGranule = 1ull << 20;

struct Ord {
  RingSeq ring_seq{0};
  ProcessId ring_rep{};
  std::uint64_t offset{0};

  constexpr auto operator<=>(const Ord&) const = default;
};

inline Ord ord_message_delivery(const RingId& origin, SeqNum seq) {
  return Ord{origin.seq, origin.rep, seq * kOrdGranule};
}

inline Ord ord_transitional_conf(const RingId& prior, SeqNum cutoff) {
  return Ord{prior.seq, prior.rep, cutoff * kOrdGranule + kOrdGranule / 2};
}

inline Ord ord_regular_conf(const RingId& ring) { return Ord{ring.seq, ring.rep, 0}; }

/// Ord for a send event: immediately after the sender's previous event,
/// which must already lie in the same ring's ord block.
inline Ord ord_send_after(const Ord& last_event_ord) {
  return Ord{last_event_ord.ring_seq, last_event_ord.ring_rep,
             last_event_ord.offset + 1};
}

std::string to_string(const Ord& o);

// --- wire helpers -----------------------------------------------------------

void encode(wire::Writer& w, const RingId& r);
RingId decode_ring_id(wire::Reader& r);

void encode(wire::Writer& w, const ConfigId& c);
ConfigId decode_config_id(wire::Reader& r);

void encode(wire::Writer& w, const MsgId& m);
MsgId decode_msg_id(wire::Reader& r);

}  // namespace evs
