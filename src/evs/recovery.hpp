// EVS recovery: steps 3-6 of the paper's algorithm (Section 3), as pure
// logic separated from the node's I/O so it can be unit tested directly.
//
// Key design points (see DESIGN.md §4):
//
// * Exchange messages are FROZEN per proposal: a process computes its
//   exchange summary once when it adopts a proposed ring and rebroadcasts
//   the identical summary until everyone has it. Step 6 then operates on
//   the union of the frozen summaries of the transitional members — never
//   on a process's live store — so every member of a transitional
//   configuration computes the identical delivery plan (Specification 4,
//   failure atomicity). Straggler packets received after freezing are
//   excluded deterministically by everyone.
//
// * Completion is component-wide: step 6 runs only after *every* member of
//   the proposed ring (not just the local transitional group) has
//   acknowledged holding all messages available to its group. This keeps
//   the installation of the new regular configuration roughly simultaneous
//   so the first token finds every member operational.
//
// * A process appends the transitional members and their obligation sets to
//   its own obligation set at the moment it acknowledges completion
//   (step 5.c), after persisting the rebroadcast messages — the persistence
//   ordering that makes Specification 7.1's proof go through across
//   crashes.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "evs/config.hpp"
#include "totem/messages.hpp"
#include "util/seq_set.hpp"
#include "util/types.hpp"

namespace evs {

/// The outcome of step 6: what to deliver and in which configurations.
struct Step6Plan {
  /// False when this process had no prior regular configuration (fresh
  /// start): only the new regular configuration change is delivered.
  bool has_transitional{false};

  /// Members of this process's transitional configuration (step 4.a).
  std::vector<ProcessId> trans_members;

  /// Deliver these old-ring seqs as part of the *old regular* configuration
  /// (step 6.b), in order.
  std::vector<SeqNum> regular_seqs;

  /// The boundary: every seq <= cutoff that will ever be delivered in the
  /// old regular configuration has been; used for the transitional
  /// configuration change's ord value.
  SeqNum cutoff{0};

  /// Deliver these old-ring seqs in the *transitional* configuration
  /// (step 6.d), in order, after the transitional configuration change.
  std::vector<SeqNum> trans_seqs;

  /// Old-ring seqs discarded by step 6.a (available but causally suspect).
  std::vector<SeqNum> discarded;
};

class RecoveryEngine {
 public:
  RecoveryEngine(ProcessId self, RingId proposed_ring,
                 std::vector<ProcessId> proposed_members);

  const RingId& proposed_ring() const { return proposed_ring_; }
  const std::vector<ProcessId>& members() const { return members_; }

  /// Record a (frozen) exchange. The first exchange received from a sender
  /// for this proposal wins; senders only ever resend identical content
  /// within one proposal. Returns true if it was new.
  bool on_exchange(const ExchangeMsg& exchange);

  /// Record the latest recovery ack from a member.
  void on_ack(const RecoveryAckMsg& ack);

  /// Straggler/rebroadcast bookkeeping: the node tells the engine what the
  /// local process currently holds for its old ring.
  bool have_all_exchanges() const;

  const ExchangeMsg* exchange_of(ProcessId p) const;

  /// Step 4.a: members of the proposed ring whose last regular
  /// configuration equals `old_ring`. Requires have_all_exchanges().
  std::vector<ProcessId> transitional_members(const RingId& old_ring) const;

  /// Union of the frozen received-sets of the given transitional members.
  SeqSet union_received(const std::vector<ProcessId>& trans) const;

  /// Step 4.b / 5.a: which seqs should *self* rebroadcast now. A seq is
  /// rebroadcast by the lowest-id member currently known to hold it, among
  /// those some member still lacks (latest-ack knowledge).
  std::vector<SeqNum> to_rebroadcast(const std::vector<ProcessId>& trans,
                                     const SeqSet& my_received) const;

  /// Step 5.b: true once `my_received` covers the union.
  bool self_complete(const std::vector<ProcessId>& trans,
                     const SeqSet& my_received) const;

  /// True once every proposed member's latest ack reports complete.
  bool all_complete() const;

  /// Max old-ring safe horizon any transitional member observed.
  SeqNum global_safe_upto(const std::vector<ProcessId>& trans) const;

  /// Merged obligation sets of the transitional members plus the members
  /// themselves (step 5.c).
  std::vector<ProcessId> merged_obligations(const std::vector<ProcessId>& trans) const;

 private:
  /// Latest known received-set of p (frozen exchange merged with acks).
  SeqSet known_received(ProcessId p) const;

  ProcessId self_;
  RingId proposed_ring_;
  std::vector<ProcessId> members_;  // sorted
  std::map<ProcessId, ExchangeMsg> exchanges_;
  std::map<ProcessId, RecoveryAckMsg> acks_;
};

/// Step 6 planning. `store_lookup(seq)` returns the message for an old-ring
/// seq (must succeed for every seq in the union above `gc_upto` —
/// completion guarantees it). `delivered_upto` / `delivered_extra` describe
/// what this process already delivered from the old ring before recovery
/// began. `gc_upto` is the local safety-horizon GC watermark: bodies at or
/// below it were reclaimed, but each such seq was delivered locally within
/// the old ring's safe horizon, so the cutoff walk can treat it as
/// available-and-safe without consulting the store. The plan stays
/// identical across transitional members because gc_upto <= delivered_upto
/// <= cutoff: GC only elides lookups the walk was going to pass anyway.
Step6Plan plan_step6(const std::vector<ProcessId>& trans_members,
                     const SeqSet& union_received, SeqNum global_safe_upto,
                     const std::vector<ProcessId>& obligation_set,
                     const std::function<const RegularMsg*(SeqNum)>& store_lookup,
                     SeqNum delivered_upto, const SeqSet& delivered_extra,
                     SeqNum gc_upto = 0);

}  // namespace evs
