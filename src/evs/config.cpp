#include "evs/config.hpp"

#include <algorithm>

namespace evs {

std::string to_string(const RingId& r) {
  return "ring(" + std::to_string(r.seq) + "," + to_string(r.rep) + ")";
}

std::string to_string(const ConfigId& c) {
  if (!c.transitional) return "reg[" + to_string(c.ring) + "]";
  return "trans[" + to_string(c.prior_ring) + "->" + to_string(c.ring) + "]";
}

std::string to_string(const Configuration& c) {
  std::string out = to_string(c.id) + "{";
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    if (i > 0) out += ",";
    out += to_string(c.members[i]);
  }
  return out + "}";
}

bool Configuration::contains(ProcessId p) const {
  return std::binary_search(members.begin(), members.end(), p);
}

std::string to_string(const MsgId& m) {
  return to_string(m.sender) + "#" + std::to_string(m.counter);
}

std::string to_string(const Ord& o) {
  return "ord(" + std::to_string(o.ring_seq) + "," + to_string(o.ring_rep) + "," +
         std::to_string(o.offset) + ")";
}

void encode(wire::Writer& w, const RingId& r) {
  w.u64(r.seq);
  w.pid(r.rep);
}

RingId decode_ring_id(wire::Reader& r) {
  RingId out;
  out.seq = r.u64();
  out.rep = r.pid();
  return out;
}

void encode(wire::Writer& w, const ConfigId& c) {
  encode(w, c.ring);
  encode(w, c.prior_ring);
  w.boolean(c.transitional);
}

ConfigId decode_config_id(wire::Reader& r) {
  ConfigId out;
  out.ring = decode_ring_id(r);
  out.prior_ring = decode_ring_id(r);
  out.transitional = r.boolean();
  return out;
}

void encode(wire::Writer& w, const MsgId& m) {
  w.pid(m.sender);
  w.u64(m.counter);
}

MsgId decode_msg_id(wire::Reader& r) {
  MsgId out;
  out.sender = r.pid();
  out.counter = r.u64();
  return out;
}

}  // namespace evs
