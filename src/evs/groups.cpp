#include "evs/groups.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {

GroupNode::Met::Met(obs::MetricsRegistry& r)
    : delivered(r.counter("group.delivered")),
      filtered_foreign(r.counter("group.filtered_foreign")),
      view_changes(r.counter("group.view_changes")),
      send_errors(r.counter("group.send_errors")) {}

GroupNode::GroupNode(EvsNode& node) : node_(node), met_(node.metrics()) {
  current_config_ = node_.config();
  node_.set_on_deliver([this](const EvsNode::Delivery& d) { on_deliver(d); });
  node_.set_on_config_change([this](const Configuration& c) { on_config(c); });
}

GroupNode::Stats GroupNode::stats() const {
  Stats s;
  s.delivered = met_.delivered.value();
  s.filtered_foreign = met_.filtered_foreign.value();
  s.view_changes = met_.view_changes.value();
  s.send_errors = met_.send_errors.value();
  return s;
}

void GroupNode::join(GroupId group) {
  if (joined_.count(group) > 0) return;
  joined_.insert(group);
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Frame::Join));
  w.u32(group);
  node_.send(Service::Agreed, w.take()).value();
}

void GroupNode::leave(GroupId group) {
  if (joined_.erase(group) == 0) return;
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Frame::Leave));
  w.u32(group);
  node_.send(Service::Agreed, w.take()).value();
}

Expected<MsgId> GroupNode::send(GroupId group, Service service,
                                std::vector<std::uint8_t> payload) {
  if (joined_.count(group) == 0) {
    met_.send_errors.inc();
    return Status::error(Errc::not_in_config, "send to a group not joined");
  }
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Frame::App));
  w.u32(group);
  w.bytes(payload);
  Expected<MsgId> sent = node_.send(service, w.take());
  if (!sent.ok()) met_.send_errors.inc();
  return sent;
}

std::vector<ProcessId> GroupNode::view(GroupId group) const {
  std::vector<ProcessId> out;
  auto it = member_.find(group);
  if (it == member_.end()) return out;
  for (ProcessId p : it->second) {
    if (current_config_.contains(p)) out.push_back(p);
  }
  return out;  // std::set iteration is sorted
}

void GroupNode::emit_view(GroupId group) {
  met_.view_changes.inc();
  if (view_handler_) view_handler_(GroupView{group, view(group)});
}

void GroupNode::announce_memberships() {
  if (joined_.empty()) return;
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Frame::Announce));
  w.u32(static_cast<std::uint32_t>(joined_.size()));
  for (GroupId g : joined_) w.u32(g);
  node_.send(Service::Agreed, w.take()).value();
}

void GroupNode::on_config(const Configuration& config) {
  current_config_ = config;
  if (!config.id.transitional) {
    // Group membership is re-established from scratch in every regular
    // configuration: everyone re-announces what it is joined to, and the
    // absence of a re-announcement IS a leave — so joins and leaves that
    // happened on the far side of a partition both take effect at the
    // merge without any tombstone bookkeeping.
    member_.clear();
    announce_memberships();
    for (GroupId g : joined_) emit_view(g);
  }
}

void GroupNode::on_deliver(const EvsNode::Delivery& d) {
  wire::Reader r(d.payload);
  const auto frame = static_cast<Frame>(r.u8());
  switch (frame) {
    case Frame::App: {
      const GroupId group = r.u32();
      if (joined_.count(group) == 0) {
        met_.filtered_foreign.inc();
        return;
      }
      GroupDelivery out;
      out.group = group;
      out.id = d.id;
      out.service = d.service;
      out.payload = r.bytes();
      EVS_ASSERT(r.done());
      out.config = d.config;
      out.ord = d.ord;
      met_.delivered.inc();
      if (deliver_handler_) deliver_handler_(out);
      break;
    }
    case Frame::Join: {
      const GroupId group = r.u32();
      EVS_ASSERT(r.done());
      if (member_[group].insert(d.id.sender).second && joined_.count(group) > 0) {
        emit_view(group);
      }
      break;
    }
    case Frame::Leave: {
      const GroupId group = r.u32();
      EVS_ASSERT(r.done());
      if (member_[group].erase(d.id.sender) > 0 && joined_.count(group) > 0) {
        emit_view(group);
      }
      break;
    }
    case Frame::Announce: {
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const GroupId group = r.u32();
        if (member_[group].insert(d.id.sender).second && joined_.count(group) > 0) {
          emit_view(group);
        }
      }
      EVS_ASSERT(r.done());
      break;
    }
  }
}

}  // namespace evs
