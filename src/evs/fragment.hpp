// Large-message fragmentation and reassembly on top of EvsNode.
//
// Real Totem fragments application messages that exceed the medium's MTU;
// this layer reproduces that: send() splits a payload into chunks that
// travel as ordinary EVS messages and are reassembled, in total order, at
// every receiver. Because all fragments of one logical message carry the
// same delivery guarantee and flow through the same total order, every
// member of a configuration reassembles (or purges) the identical set of
// logical messages.
//
// Partition semantics: a logical message is delivered only when all of its
// fragments have been; fragments stranded by a configuration change leave
// an incomplete reassembly that is purged deterministically at the next
// regular configuration (every member of the old component saw the same
// fragment subset, so every member purges the same messages). A logical
// message therefore inherits EVS's failure atomicity at the granularity of
// the whole payload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "evs/node.hpp"

namespace evs {

class FragmentNode {
 public:
  struct Options {
    std::size_t max_fragment_bytes{1024};
  };

  /// Identity of a logical (possibly multi-fragment) message.
  struct LargeId {
    ProcessId sender;
    std::uint64_t counter{0};
    constexpr auto operator<=>(const LargeId&) const = default;
  };

  struct LargeDelivery {
    LargeId id;
    Service service{Service::Agreed};
    std::vector<std::uint8_t> payload;
    Configuration config;  ///< configuration of the completing fragment
    Ord ord;               ///< ord of the completing fragment
    std::uint32_t fragments{0};
  };

  /// Snapshot of the "fragment.*" counters (kept in the underlying
  /// EvsNode's obs::MetricsRegistry; assembled on demand).
  struct Stats {
    std::uint64_t logical_sent{0};
    std::uint64_t fragments_sent{0};
    std::uint64_t reassembled{0};
    std::uint64_t purged_incomplete{0};
    std::uint64_t send_errors{0};  ///< send_large() calls rejected with a Status
  };

  using DeliverHandler = std::function<void(const LargeDelivery&)>;

  explicit FragmentNode(EvsNode& node) : FragmentNode(node, Options{}) {}
  FragmentNode(EvsNode& node, Options options);

  /// Register the reassembled-message callback (uniform setter name across
  /// all node layers).
  void set_on_deliver(DeliverHandler h) { deliver_handler_ = std::move(h); }

  /// Send a payload of any size; it is split into ceil(size/max) fragments.
  /// Fails with Errc::not_running on a crashed node and
  /// Errc::payload_too_large when a fragment (chunk plus framing header)
  /// would exceed the node's Options::max_payload_bytes. A failure after
  /// the first fragment strands the earlier ones; receivers purge the
  /// incomplete reassembly at the next regular configuration.
  Expected<LargeId> send_large(Service service, std::vector<std::uint8_t> payload);

  Stats stats() const;
  std::size_t pending_reassemblies() const { return partial_.size(); }
  EvsNode& evs() { return node_; }

 private:
  struct Partial {
    std::uint32_t expected{0};
    std::uint32_t received{0};
    Service service{Service::Agreed};
    std::vector<std::vector<std::uint8_t>> chunks;
    std::vector<bool> got;
  };

  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);

  /// Cached "fragment.*" instrument handles in the node's registry.
  struct Met {
    obs::Counter& logical_sent;
    obs::Counter& fragments_sent;
    obs::Counter& reassembled;
    obs::Counter& purged_incomplete;
    obs::Counter& send_errors;
    explicit Met(obs::MetricsRegistry& r);
  };

  EvsNode& node_;
  Options options_;
  Met met_;
  std::uint64_t counter_{0};
  std::map<LargeId, Partial> partial_;
  DeliverHandler deliver_handler_;
};

}  // namespace evs
