// Large-message fragmentation and reassembly on top of EvsNode.
//
// Real Totem fragments application messages that exceed the medium's MTU;
// this layer reproduces that: send() splits a payload into chunks that
// travel as ordinary EVS messages and are reassembled, in total order, at
// every receiver. Because all fragments of one logical message carry the
// same delivery guarantee and flow through the same total order, every
// member of a configuration reassembles (or purges) the identical set of
// logical messages.
//
// Partition semantics: a logical message is delivered only when all of its
// fragments have been; fragments stranded by a configuration change leave
// an incomplete reassembly that is purged deterministically at the next
// regular configuration (every member of the old component saw the same
// fragment subset, so every member purges the same messages). A logical
// message therefore inherits EVS's failure atomicity at the granularity of
// the whole payload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "evs/node.hpp"

namespace evs {

class FragmentNode {
 public:
  struct Options {
    std::size_t max_fragment_bytes{1024};
  };

  /// Identity of a logical (possibly multi-fragment) message.
  struct LargeId {
    ProcessId sender;
    std::uint64_t counter{0};
    constexpr auto operator<=>(const LargeId&) const = default;
  };

  struct LargeDelivery {
    LargeId id;
    Service service{Service::Agreed};
    std::vector<std::uint8_t> payload;
    Configuration config;  ///< configuration of the completing fragment
    Ord ord;               ///< ord of the completing fragment
    std::uint32_t fragments{0};
  };

  struct Stats {
    std::uint64_t logical_sent{0};
    std::uint64_t fragments_sent{0};
    std::uint64_t reassembled{0};
    std::uint64_t purged_incomplete{0};
  };

  using DeliverHandler = std::function<void(const LargeDelivery&)>;

  explicit FragmentNode(EvsNode& node) : FragmentNode(node, Options{}) {}
  FragmentNode(EvsNode& node, Options options);

  void set_deliver_handler(DeliverHandler h) { deliver_handler_ = std::move(h); }

  /// Send a payload of any size; it is split into ceil(size/max) fragments.
  LargeId send(Service service, std::vector<std::uint8_t> payload);

  const Stats& stats() const { return stats_; }
  std::size_t pending_reassemblies() const { return partial_.size(); }
  EvsNode& evs() { return node_; }

 private:
  struct Partial {
    std::uint32_t expected{0};
    std::uint32_t received{0};
    Service service{Service::Agreed};
    std::vector<std::vector<std::uint8_t>> chunks;
    std::vector<bool> got;
  };

  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);

  EvsNode& node_;
  Options options_;
  std::uint64_t counter_{0};
  std::map<LargeId, Partial> partial_;
  DeliverHandler deliver_handler_;
  Stats stats_;
};

}  // namespace evs
