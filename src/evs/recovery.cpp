#include "evs/recovery.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace evs {

RecoveryEngine::RecoveryEngine(ProcessId self, RingId proposed_ring,
                               std::vector<ProcessId> proposed_members)
    : self_(self), proposed_ring_(proposed_ring), members_(std::move(proposed_members)) {
  EVS_ASSERT(std::is_sorted(members_.begin(), members_.end()));
  EVS_ASSERT(std::binary_search(members_.begin(), members_.end(), self_));
}

bool RecoveryEngine::on_exchange(const ExchangeMsg& exchange) {
  EVS_ASSERT(exchange.proposed_ring == proposed_ring_);
  if (!std::binary_search(members_.begin(), members_.end(), exchange.sender)) {
    return false;  // not part of this proposal; node will regather
  }
  auto [it, inserted] = exchanges_.try_emplace(exchange.sender, exchange);
  return inserted;
}

void RecoveryEngine::on_ack(const RecoveryAckMsg& ack) {
  EVS_ASSERT(ack.proposed_ring == proposed_ring_);
  if (!std::binary_search(members_.begin(), members_.end(), ack.sender)) return;
  acks_[ack.sender] = ack;
}

bool RecoveryEngine::have_all_exchanges() const {
  return exchanges_.size() == members_.size();
}

const ExchangeMsg* RecoveryEngine::exchange_of(ProcessId p) const {
  auto it = exchanges_.find(p);
  return it == exchanges_.end() ? nullptr : &it->second;
}

std::vector<ProcessId> RecoveryEngine::transitional_members(const RingId& old_ring) const {
  std::vector<ProcessId> out;
  for (const auto& [p, ex] : exchanges_) {
    if (ex.old_ring == old_ring) out.push_back(p);
  }
  return out;  // std::map iteration keeps it sorted
}

SeqSet RecoveryEngine::union_received(const std::vector<ProcessId>& trans) const {
  SeqSet u;
  for (ProcessId p : trans) {
    auto it = exchanges_.find(p);
    EVS_ASSERT(it != exchanges_.end());
    u.merge(it->second.received);
  }
  return u;
}

SeqSet RecoveryEngine::known_received(ProcessId p) const {
  SeqSet s;
  if (auto it = exchanges_.find(p); it != exchanges_.end()) s.merge(it->second.received);
  if (auto it = acks_.find(p); it != acks_.end()) s.merge(it->second.received);
  return s;
}

std::vector<SeqNum> RecoveryEngine::to_rebroadcast(const std::vector<ProcessId>& trans,
                                                   const SeqSet& my_received) const {
  // For each seq someone still lacks, the lowest-id member known to hold it
  // rebroadcasts; ties in knowledge are broken identically everywhere, so at
  // most one member transmits each seq per round.
  const SeqSet u = union_received(trans);
  if (u.empty()) return {};
  std::map<ProcessId, SeqSet> known;
  for (ProcessId p : trans) known.emplace(p, p == self_ ? my_received : known_received(p));

  SeqSet needed;  // seqs some member still lacks
  for (const auto& [p, have] : known) {
    for (const auto& iv : u.intervals()) {
      for (SeqNum s : have.missing_in(iv.lo, iv.hi)) needed.insert(s);
    }
  }

  std::vector<SeqNum> mine;
  for (SeqNum s : needed.to_vector()) {
    ProcessId holder{UINT32_MAX};
    for (const auto& [p, have] : known) {
      if (have.contains(s)) {
        holder = p;
        break;  // map order = ascending id
      }
    }
    if (holder == self_) mine.push_back(s);
  }
  return mine;
}

bool RecoveryEngine::self_complete(const std::vector<ProcessId>& trans,
                                   const SeqSet& my_received) const {
  const SeqSet u = union_received(trans);
  for (const auto& iv : u.intervals()) {
    if (!my_received.missing_in(iv.lo, iv.hi).empty()) return false;
  }
  return true;
}

bool RecoveryEngine::all_complete() const {
  for (ProcessId p : members_) {
    auto it = acks_.find(p);
    if (it == acks_.end() || !it->second.complete) return false;
  }
  return true;
}

SeqNum RecoveryEngine::global_safe_upto(const std::vector<ProcessId>& trans) const {
  SeqNum best = 0;
  for (ProcessId p : trans) {
    auto it = exchanges_.find(p);
    EVS_ASSERT(it != exchanges_.end());
    best = std::max(best, it->second.old_safe_upto);
  }
  return best;
}

std::vector<ProcessId> RecoveryEngine::merged_obligations(
    const std::vector<ProcessId>& trans) const {
  std::set<ProcessId> out(trans.begin(), trans.end());
  for (ProcessId p : trans) {
    auto it = exchanges_.find(p);
    EVS_ASSERT(it != exchanges_.end());
    out.insert(it->second.obligation_set.begin(), it->second.obligation_set.end());
  }
  return {out.begin(), out.end()};
}

Step6Plan plan_step6(const std::vector<ProcessId>& trans_members,
                     const SeqSet& union_received, SeqNum global_safe_upto,
                     const std::vector<ProcessId>& obligation_set,
                     const std::function<const RegularMsg*(SeqNum)>& store_lookup,
                     SeqNum delivered_upto, const SeqSet& delivered_extra,
                     SeqNum gc_upto) {
  // GC never outruns delivery, and GC requires the local safe horizon —
  // which the global one dominates. Both inequalities carry the proof that
  // skipping the store below gc_upto cannot change the cutoff (DESIGN.md).
  EVS_ASSERT(gc_upto <= delivered_upto);
  EVS_ASSERT(gc_upto <= global_safe_upto);

  Step6Plan plan;
  plan.has_transitional = true;
  plan.trans_members = trans_members;

  const auto already_delivered = [&](SeqNum s) {
    return s <= delivered_upto || delivered_extra.contains(s);
  };
  const auto obligated = [&](ProcessId p) {
    return std::binary_search(obligation_set.begin(), obligation_set.end(), p);
  };

  const SeqNum high = union_received.max();

  // Step 6.b: the old-regular-configuration prefix. Walk the total order
  // from 1: stop at the first unavailable seq (hole in the union) or the
  // first safe-requested message beyond the old ring's established safety
  // horizon. Everything before that boundary is delivered in the old
  // regular configuration; every transitional member computes the same
  // boundary because union/safe horizon come from the frozen exchanges.
  SeqNum cutoff = 0;
  for (SeqNum s = 1; s <= high; ++s) {
    if (!union_received.contains(s)) break;
    if (s <= gc_upto) {
      // Body reclaimed by safety-horizon GC. We delivered s (gc_upto <=
      // delivered_upto) and s <= global_safe_upto, so whatever its service
      // level, the safe-check below could not have broken here.
      cutoff = s;
      continue;
    }
    const RegularMsg* m = store_lookup(s);
    EVS_ASSERT_MSG(m != nullptr, "recovery completion must guarantee the union");
    if (m->service == Service::Safe && s > global_safe_upto) break;
    cutoff = s;
  }
  plan.cutoff = cutoff;
  for (SeqNum s = delivered_upto + 1; s <= cutoff; ++s) {
    if (!delivered_extra.contains(s)) plan.regular_seqs.push_back(s);
  }

  // Step 6.a + 6.d: from the remainder, deliver in order every message whose
  // total-order predecessors have all been delivered, plus every message
  // from an obligated sender; discard the rest (they may causally depend on
  // an unavailable message).
  SeqNum contig = cutoff;  // highest seq such that [1..contig] fully delivered
  for (SeqNum s = cutoff + 1; s <= high; ++s) {
    if (!union_received.contains(s)) continue;  // unavailable: a hole
    const RegularMsg* m = store_lookup(s);
    EVS_ASSERT(m != nullptr);
    const bool contiguous = (s == contig + 1);
    if (contiguous) contig = s;
    if (already_delivered(s)) continue;
    if (contiguous || obligated(m->id.sender)) {
      plan.trans_seqs.push_back(s);
    } else {
      plan.discarded.push_back(s);
    }
  }
  return plan;
}

}  // namespace evs
