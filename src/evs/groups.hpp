// Process groups on top of the broadcast domain.
//
// The paper opens with "the process group paradigm [7] is a useful and
// appropriate addressing mechanism for multicast and broadcast
// communication". This layer provides that addressing on top of EvsNode,
// the way Transis and Spread do lightweight groups over one broadcast
// domain: every message carries a group id in its payload frame; join and
// leave announcements travel through the same totally ordered stream, so
// all members of a configuration agree on each group's membership at every
// point of the total order.
//
// A group's *view* at a process is (processes that announced join) ∩
// (current configuration members): a partition implicitly shrinks every
// group view to the reachable members, and a merge restores it — group
// views inherit the regular/transitional configuration semantics of the
// underlying EVS layer. Membership knowledge is rebuilt from scratch in
// every regular configuration: each member re-announces its joins through
// the new total order, and the absence of a re-announcement IS a leave —
// joins and leaves from the far side of a partition both take effect at
// the merge without tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "evs/node.hpp"

namespace evs {

using GroupId = std::uint32_t;

class GroupNode {
 public:
  struct GroupDelivery {
    GroupId group{0};
    MsgId id;
    Service service{Service::Agreed};
    std::vector<std::uint8_t> payload;
    Configuration config;  ///< underlying EVS configuration
    Ord ord;
  };

  /// Group view: the group's members reachable in the current configuration.
  struct GroupView {
    GroupId group{0};
    std::vector<ProcessId> members;  // sorted
  };

  using DeliverHandler = std::function<void(const GroupDelivery&)>;
  using ViewHandler = std::function<void(const GroupView&)>;

  /// Snapshot of the "group.*" counters (kept in the underlying EvsNode's
  /// obs::MetricsRegistry; assembled on demand).
  struct Stats {
    std::uint64_t delivered{0};
    std::uint64_t filtered_foreign{0};  ///< traffic for groups we are not in
    std::uint64_t view_changes{0};
    std::uint64_t send_errors{0};  ///< send() calls rejected with a Status
  };

  explicit GroupNode(EvsNode& node);

  /// Register the group-delivery callback (uniform setter name across all
  /// node layers).
  void set_on_deliver(DeliverHandler h) { deliver_handler_ = std::move(h); }
  /// Register the group-view-change callback.
  void set_on_view_change(ViewHandler h) { view_handler_ = std::move(h); }

  /// Join a group: announced through the total order; the local membership
  /// takes effect when the announcement is delivered (so joiners never see
  /// messages ordered before their join).
  void join(GroupId group);
  void leave(GroupId group);

  /// Multicast to a group. Fails with Errc::not_in_config when this process
  /// has not joined the group, plus whatever the underlying EvsNode::send
  /// reports (not_running, payload_too_large).
  Expected<MsgId> send(GroupId group, Service service,
                       std::vector<std::uint8_t> payload);

  bool joined(GroupId group) const { return joined_.count(group) > 0; }

  /// Current view of a group (empty if nobody reachable has joined).
  std::vector<ProcessId> view(GroupId group) const;

  /// Groups this process has joined.
  std::vector<GroupId> groups() const { return {joined_.begin(), joined_.end()}; }

  Stats stats() const;
  EvsNode& evs() { return node_; }

 private:
  enum class Frame : std::uint8_t { App = 0, Join = 1, Leave = 2, Announce = 3 };

  void on_deliver(const EvsNode::Delivery& d);
  void on_config(const Configuration& config);
  void emit_view(GroupId group);
  void announce_memberships();

  /// Cached "group.*" instrument handles in the node's registry.
  struct Met {
    obs::Counter& delivered;
    obs::Counter& filtered_foreign;
    obs::Counter& view_changes;
    obs::Counter& send_errors;
    explicit Met(obs::MetricsRegistry& r);
  };

  EvsNode& node_;
  Met met_;
  std::set<GroupId> joined_;                       ///< groups this process is in
  std::map<GroupId, std::set<ProcessId>> member_;  ///< announced joins, all groups
  Configuration current_config_;
  DeliverHandler deliver_handler_;
  ViewHandler view_handler_;
};

}  // namespace evs
