// Umbrella header: the public API of libevs.
//
//   #include "evs/evs.hpp"
//
// Core types and entry points:
//   evs::EvsNode        — a process running extended virtual synchrony
//   evs::VsNode         — the Isis-style virtual synchrony filter on top
//   evs::GroupNode      — process-group addressing over the broadcast domain
//   evs::FragmentNode   — large-message fragmentation/reassembly
//   evs::Cluster        — simulation harness (network, stores, trace)
//   evs::VsCluster      — harness for the VS layer
//   evs::SpecChecker    — Specifications 1.1-7.2 trace checker
//   evs::VsChecker      — Birman legality (C1-C3, L1-L5) checker
//
// Callbacks use uniform setter names across every node layer:
//   set_on_deliver(...)        — per-message delivery callback (EvsNode,
//                                GroupNode, FragmentNode, VsNode)
//   set_on_deliver_batch(...)  — zero-copy batch delivery: a
//                                std::span<const EvsNode::DeliveryView>
//                                whose payload spans borrow the arriving
//                                datagrams for the callback's duration
//   set_on_config_change(...)  — configuration changes (EvsNode)
//   set_on_view_change(...)    — per-group views (GroupNode), VS views (VsNode)
// (The old set_*_handler names went through a [[deprecated]] cycle and are
// gone.)
//
// The wire codec (wire/codec.hpp) is span-based: decode_* / peek_type take
// std::span<const std::uint8_t>, frames pack back-to-back into one datagram
// (wire::append_frame / wire::FrameCursor), and RegularMsgView
// (totem/messages.hpp) is the non-owning decode whose payload span plus
// BufferRef owner pin the backing datagram — storage comes from the
// recycling net::DatagramArena (net/arena.hpp). Lifetime rules are in
// DESIGN.md "Zero-copy ownership model".
//
// Fallible entry points return evs::Status / evs::Expected<T>
// (util/status.hpp) with a machine-readable evs::Errc:
//   EvsNode::send(...)             -> Expected<MsgId>
//   EvsNode::send_batch(...)       -> Expected<std::vector<MsgId>>
//                                     (all-or-nothing vs flow control)
//   FragmentNode::send_large(...)  -> Expected<MsgId>
//   wire::seal_frame/open_frame    -> Expected<...>
// EvsNode::Options::validate() rejects inconsistent timeout/limit
// combinations at construction time (Errc::invalid_options).
//
// Observability (src/obs, zero overhead when disabled):
//   evs::obs::MetricsRegistry — typed counters/gauges/histograms; one per
//                               node, network and harness; merge_from()
//                               aggregates them cluster-wide
//   evs::obs::SpanSink        — span tracing of gathers, recovery steps,
//                               config installs and token rotations;
//                               exports chrome://tracing JSON or text
//   evs::obs exporters        — "evs.obs.snapshot" / "evs.obs.report"
//                               JSON documents plus their validators
//                               (obs/export.hpp, testkit/report.hpp)
//
// See README.md for the architecture overview and hot-path tuning knobs
// (batch_max_frames, batch_max_bytes, batch_flush_us) and DESIGN.md for
// the paper mapping.
#pragma once

#include "evs/config.hpp"
#include "evs/fragment.hpp"
#include "evs/groups.hpp"
#include "evs/node.hpp"
#include "evs/recovery.hpp"
#include "net/arena.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "spec/checker.hpp"
#include "spec/trace.hpp"
#include "spec/vs_checker.hpp"
#include "util/status.hpp"
#include "vs/filter.hpp"
#include "vs/primary.hpp"
#include "wire/codec.hpp"
