// Umbrella header: the public API of libevs.
//
//   #include "evs/evs.hpp"
//
// Core types and entry points:
//   evs::EvsNode        — a process running extended virtual synchrony
//   evs::VsNode         — the Isis-style virtual synchrony filter on top
//   evs::GroupNode      — process-group addressing over the broadcast domain
//   evs::FragmentNode   — large-message fragmentation/reassembly
//   evs::Cluster        — simulation harness (network, stores, trace)
//   evs::VsCluster      — harness for the VS layer
//   evs::SpecChecker    — Specifications 1.1-7.2 trace checker
//   evs::VsChecker      — Birman legality (C1-C3, L1-L5) checker
//
// See README.md for the architecture overview and DESIGN.md for the paper
// mapping.
#pragma once

#include "evs/config.hpp"
#include "evs/fragment.hpp"
#include "evs/groups.hpp"
#include "evs/node.hpp"
#include "evs/recovery.hpp"
#include "spec/checker.hpp"
#include "spec/trace.hpp"
#include "spec/vs_checker.hpp"
#include "vs/filter.hpp"
#include "vs/primary.hpp"
