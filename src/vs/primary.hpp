// Primary-component determination (Section 5 of the paper).
//
// The virtual synchrony filter needs to know, for each regular
// configuration, whether it is *the* primary component. Two algorithms are
// provided:
//
// * StaticMajority — a configuration is primary iff it contains a strict
//   majority of the static universe of processes. Stateless and decided
//   identically by every member from the configuration alone. Any two
//   majorities intersect, so at most one component is primary (Uniqueness)
//   and consecutive primaries share a member (Continuity).
//
// * DynamicLinearVoting — the paper's "algorithm that has a greater
//   probability of finding a primary component": a configuration is primary
//   iff it contains a strict majority of the *previous* primary component.
//   This requires agreement on what the previous primary was, which the
//   filter implements by exchanging each member's persisted DlvState over
//   safe-delivered messages in the new configuration and resolving to the
//   highest epoch (see vs/filter.hpp). The decision logic itself is pure
//   and lives here so it can be exhaustively unit tested.
//
//   Crash safety uses a two-phase record: a process persists an *attempt*
//   (epoch+1, members) before treating a configuration as primary, and
//   confirms it afterwards. A recovering process conservatively resolves a
//   pending attempt as if it had succeeded, so no later configuration can
//   form a rival primary from the superseded basis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "evs/config.hpp"
#include "storage/stable_store.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace evs {

/// True iff `members` contains a strict majority of `basis`.
bool has_majority_of(const std::vector<ProcessId>& members,
                     const std::vector<ProcessId>& basis);

class StaticMajority {
 public:
  explicit StaticMajority(std::size_t universe_size) : universe_(universe_size) {}

  bool is_primary(const Configuration& config) const {
    return 2 * config.members.size() > universe_;
  }

  std::size_t universe() const { return universe_; }

 private:
  std::size_t universe_;
};

/// A known primary component: a monotone epoch plus its membership.
struct PrimaryEpoch {
  std::uint64_t epoch{0};
  std::vector<ProcessId> members;  // sorted

  bool operator==(const PrimaryEpoch&) const = default;
};

/// Per-process dynamic-linear-voting state, persisted via StableStore.
class DlvState {
 public:
  /// `initial_members` is the bootstrap primary (epoch 0): the full initial
  /// universe, identical at every process.
  DlvState(StableStore& store, std::vector<ProcessId> initial_members);

  /// The basis a new primary must intersect in majority: the attempt if one
  /// is pending (conservative), else the last confirmed primary.
  const PrimaryEpoch& basis() const;

  const PrimaryEpoch& confirmed() const { return confirmed_; }
  const std::optional<PrimaryEpoch>& attempt() const { return attempt_; }

  /// Adopt a peer's knowledge if it is newer (higher epoch).
  /// Returns true if anything changed; an error if the adoption could not
  /// be persisted (the in-memory basis is still advanced — conservative —
  /// but the caller must fail-stop rather than act on unpersisted state).
  [[nodiscard]] Expected<bool> merge_peer(const PrimaryEpoch& peer_basis);

  /// Would `config` be primary given the current basis?
  bool decides_primary(const Configuration& config) const;

  /// Phase 1: record the intent to treat `config` as primary with the next
  /// epoch. Persisted before the caller acts on the decision; on a persist
  /// failure the caller must NOT treat the configuration as primary.
  [[nodiscard]] Expected<PrimaryEpoch> begin_attempt(const Configuration& config);

  /// Phase 2: the attempt succeeded (the configuration operated as
  /// primary); promote it to confirmed.
  [[nodiscard]] Status confirm_attempt();

  /// Abandon a pending attempt (the configuration changed before the
  /// primary could operate). The attempt stays in the basis history — that
  /// is what makes abandoning safe.
  void abort_attempt();

 private:
  void load();
  [[nodiscard]] Status persist();

  StableStore& store_;
  PrimaryEpoch confirmed_;
  std::optional<PrimaryEpoch> attempt_;
};

}  // namespace evs
