#include "vs/filter.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

constexpr std::uint8_t kFrameApp = 0;
constexpr std::uint8_t kFrameState = 1;
constexpr const char* kKeyVsMeta = "vs_meta";

}  // namespace

const char* to_string(VsNode::Mode m) {
  switch (m) {
    case VsNode::Mode::Down: return "Down";
    case VsNode::Mode::Blocked: return "Blocked";
    case VsNode::Mode::Exchanging: return "Exchanging";
    case VsNode::Mode::InPrimary: return "InPrimary";
  }
  return "?";
}

VsNode::Met::Met(obs::MetricsRegistry& r)
    : views_installed(r.counter("vs.views_installed")),
      delivered(r.counter("vs.delivered")),
      discarded_blocked(r.counter("vs.discarded_blocked")),
      sends_rejected(r.counter("vs.sends_rejected")),
      exchanges(r.counter("vs.exchanges")),
      stops(r.counter("vs.stops")) {}

VsNode::Stats VsNode::stats() const {
  Stats s;
  s.views_installed = met_.views_installed.value();
  s.delivered = met_.delivered.value();
  s.discarded_blocked = met_.discarded_blocked.value();
  s.sends_rejected = met_.sends_rejected.value();
  s.exchanges = met_.exchanges.value();
  s.stops = met_.stops.value();
  return s;
}

VsNode::VsNode(ProcessId id, Transport& net, StableStore& store, TraceLog* evs_trace,
               VsTraceLog* vs_trace, EvsNode::Options evs_options, Options options)
    : self_(id),
      store_(store),
      vs_trace_(vs_trace),
      options_(options),
      sched_(net.scheduler()),
      evs_(id, net, store, evs_trace, evs_options) {
  EVS_ASSERT_MSG(options_.universe > 0, "universe size is required");
  if (options_.policy == Policy::DynamicLinearVoting) {
    std::vector<ProcessId> universe;
    for (std::uint32_t i = 1; i <= options_.universe; ++i) {
      universe.push_back(ProcessId{i});
    }
    dlv_.emplace(store_, std::move(universe));
  }
  evs_.set_on_config_change([this](const Configuration& c) { on_evs_config(c); });
  evs_.set_on_deliver([this](const EvsNode::Delivery& d) { on_evs_deliver(d); });
}

Status VsNode::persist_meta() {
  wire::Writer w;
  w.u32(incarnation_);
  w.boolean(in_continuity_);
  w.boolean(have_view_);
  w.u64(view_.id);
  w.pid_vec(view_.members);
  return store_.put(kKeyVsMeta, w.take());
}

Status VsNode::load_meta() {
  auto blob = store_.get(kKeyVsMeta);
  if (!blob.has_value()) return Status{};
  wire::Reader r(*blob);
  incarnation_ = r.u32();
  in_continuity_ = r.boolean();
  have_view_ = r.boolean();
  view_.id = r.u64();
  view_.members = r.pid_vec();
  EVS_ASSERT(r.done());
  // If we died inside the primary lineage, crash() already emitted the stop
  // event; the recovered incarnation starts outside the lineage. The rename
  // must be durable before anything else happens, or a second crash could
  // reuse the incarnation and with it a retired VS identity.
  if (in_continuity_) {
    in_continuity_ = false;
    if (options_.rename_on_rejoin) ++incarnation_;
    return persist_meta();
  }
  return Status{};
}

void VsNode::start() {
  EVS_ASSERT(mode_ == Mode::Down);
  if (Status st = load_meta(); !st.ok()) {
    storage_fail_stop("vs boot meta");
    return;
  }
  mode_ = Mode::Blocked;
  evs_.start();
  // The EVS layer's own boot persistence may have fail-stopped it.
  if (!evs_.running()) mode_ = Mode::Down;
}

void VsNode::storage_fail_stop(const char* where) {
  EVS_WARN("vs", "%s stable storage failed at %s; fail-stop",
           to_string(self_).c_str(), where);
  if (mode_ != Mode::Down) {
    crash();
    return;
  }
  // Boot never got off the ground; nothing volatile to tear down.
  exchange_config_.reset();
  peer_states_.clear();
  buffered_.clear();
}

void VsNode::crash() {
  if (mode_ == Mode::Down) return;
  if (in_continuity_) emit_stop();
  evs_.crash();
  mode_ = Mode::Down;
  exchange_config_.reset();
  peer_states_.clear();
  buffered_.clear();
}

Expected<MsgId> VsNode::send(std::vector<std::uint8_t> payload, Service service) {
  // Filter rule 2: only processes inside the primary lineage accept
  // messages. During a pending primary decision a member that was in the
  // previous primary view may keep sending (if the decision comes back
  // non-primary it will emit a VS stop, which is exactly the fail-stop
  // account of its unpaired sends); a process still outside the lineage
  // must wait until its join view is installed.
  const bool accepting =
      mode_ == Mode::InPrimary || (mode_ == Mode::Exchanging && in_continuity_);
  if (!accepting) {
    met_.sends_rejected.inc();
    return Status::error(Errc::blocked_not_primary,
                         "blocked outside the primary component (filter rule 2)");
  }
  wire::Writer w;
  w.u8(kFrameApp);
  w.bytes(payload);
  Expected<MsgId> sent = evs_.send(service, w.take());
  if (!sent.ok()) {
    met_.sends_rejected.inc();
    return sent;
  }
  const MsgId id = *sent;
  if (vs_trace_ != nullptr) {
    VsEvent e;
    e.type = VsEventType::Send;
    e.process = vs_identity();
    e.time = sched_.now();
    e.msg = id;
    e.view_id = have_view_ ? view_.id : 0;
    vs_trace_->record(std::move(e));
  }
  return id;
}

void VsNode::send_state_message() {
  wire::Writer w;
  w.u8(kFrameState);
  encode(w, exchange_config_->id.ring);
  w.u32(incarnation_);
  w.u64(have_view_ ? view_.id : 0);
  w.pid_vec(have_view_ ? view_.members : std::vector<ProcessId>{});
  const PrimaryEpoch& basis =
      dlv_.has_value() ? dlv_->basis() : PrimaryEpoch{};
  w.u64(basis.epoch);
  w.pid_vec(basis.members);
  evs_.send(Service::Safe, w.take()).value();
}

void VsNode::on_evs_config(const Configuration& config) {
  if (config.id.transitional) {
    // Filter rule 1: masked. Deliveries that follow are re-tagged to the
    // preceding regular configuration's view by the mode logic.
    return;
  }
  // A fresh regular configuration: the previous exchange (if unresolved) is
  // abandoned. Safe delivery guarantees that if *any* member decided the old
  // exchange, every member of our transitional configuration received the
  // same state messages before this point and decided identically — so an
  // exchange still unresolved here was resolved by no one we must agree with.
  if (!buffered_.empty()) {
    met_.discarded_blocked.inc(buffered_.size());
    buffered_.clear();
  }
  exchange_config_ = config;
  peer_states_.clear();
  met_.exchanges.inc();
  mode_ = Mode::Exchanging;
  send_state_message();
}

void VsNode::on_evs_deliver(const EvsNode::Delivery& d) {
  EVS_ASSERT(!d.payload.empty());
  if (d.payload[0] == kFrameState) {
    handle_state_msg(d);
    return;
  }
  switch (mode_) {
    case Mode::InPrimary: emit_deliver(d, view_.id); break;
    case Mode::Exchanging: buffered_.push_back(d); break;
    case Mode::Blocked:
      met_.discarded_blocked.inc();  // filter rule 2
      break;
    case Mode::Down: break;
  }
}

void VsNode::handle_state_msg(const EvsNode::Delivery& d) {
  if (!exchange_config_.has_value()) return;
  wire::Reader r(d.payload);
  const std::uint8_t tag = r.u8();
  EVS_ASSERT(tag == kFrameState);
  const RingId ring = decode_ring_id(r);
  if (ring != exchange_config_->id.ring) return;  // stale exchange
  PeerState state;
  const std::uint32_t inc = r.u32();
  state.vs_id = vs_synth_id(d.id.sender, inc);
  state.last_view_id = r.u64();
  state.last_view_members = r.pid_vec();
  state.dlv_basis.epoch = r.u64();
  state.dlv_basis.members = r.pid_vec();
  EVS_ASSERT(r.done());
  peer_states_[d.id.sender] = std::move(state);
  maybe_decide();
}

void VsNode::maybe_decide() {
  if (!exchange_config_.has_value()) return;
  for (ProcessId p : exchange_config_->members) {
    if (peer_states_.count(p) == 0) return;
  }
  bool primary = false;
  if (dlv_.has_value()) {
    for (const auto& [p, s] : peer_states_) {
      if (Expected<bool> merged = dlv_->merge_peer(s.dlv_basis); !merged.ok()) {
        // The adopted basis could not be persisted: deciding on top of it
        // would let a crash resurrect the stale basis and form a rival
        // primary. Fail-stop instead of deciding.
        storage_fail_stop("dlv merge");
        return;
      }
    }
    primary = dlv_->decides_primary(*exchange_config_);
  } else {
    primary = 2 * exchange_config_->members.size() > options_.universe;
  }
  const auto states = peer_states_;
  if (primary) {
    decide_primary(states);
  } else {
    decide_blocked();
  }
  exchange_config_.reset();
  peer_states_.clear();
}

void VsNode::decide_primary(const std::map<ProcessId, PeerState>& states) {
  const Configuration config = *exchange_config_;

  // Current VS identities, and the most recent view anyone remembers.
  std::vector<ProcessId> identities;
  const PeerState* newest = nullptr;
  for (const auto& [pid, s] : states) {
    identities.push_back(s.vs_id);
    if (s.last_view_id > 0 && (newest == nullptr || s.last_view_id > newest->last_view_id)) {
      newest = &s;
    }
  }
  std::sort(identities.begin(), identities.end());

  std::uint64_t next_id;
  std::vector<ProcessId> base;
  std::vector<ProcessId> added;
  if (newest == nullptr) {
    // Bootstrap: the first primary ever. One view, no splitting.
    next_id = 1;
    base = identities;
  } else {
    next_id = newest->last_view_id + 1;
    for (ProcessId m : newest->last_view_members) {
      if (std::binary_search(identities.begin(), identities.end(), m)) {
        base.push_back(m);
      }
    }
    for (ProcessId m : identities) {
      if (!std::binary_search(newest->last_view_members.begin(),
                              newest->last_view_members.end(), m)) {
        added.push_back(m);
      }
    }
  }

  // Filter rule 3 (and 4): removals produce one view; each joining process
  // then enters one at a time, in ascending identifier order.
  const ProcessId me = vs_identity();
  std::vector<VsView> sequence;
  std::uint32_t step = 0;
  auto push_view = [&](std::vector<ProcessId> members) {
    VsView v;
    v.id = next_id++;
    v.members = std::move(members);
    v.ord = VsOrd{ord_regular_conf(config.id.ring), ++step};
    sequence.push_back(std::move(v));
  };
  if (newest == nullptr || base.empty()) {
    // Bootstrap, or a complete identity turnover (every member of the last
    // view re-joined under a fresh incarnation): there is no primary
    // remnant to merge into one process at a time, so the primary is
    // (re)founded with a single view. The continuity of the primary
    // history is carried by the underlying processes, which the policy
    // guarantees intersect the previous primary.
    base = identities;
    push_view(base);
  } else {
    if (base != newest->last_view_members) push_view(base);
    std::vector<ProcessId> cur = base;
    for (ProcessId joiner : added) {
      cur.insert(std::upper_bound(cur.begin(), cur.end(), joiner), joiner);
      push_view(cur);
    }
    if (sequence.empty()) push_view(base);  // same membership: a new instance
  }

  if (dlv_.has_value()) {
    // The attempt record must be durable BEFORE this process acts as
    // primary (the two-phase crash-safety protocol in vs/primary.hpp). If
    // it cannot be written, becoming primary anyway would let a crash erase
    // the epoch and a later majority of the *old* basis form a rival
    // primary — so fail-stop without deciding.
    if (Expected<PrimaryEpoch> a = dlv_->begin_attempt(config); !a.ok()) {
      storage_fail_stop("dlv attempt");
      return;
    }
    if (Status st = dlv_->confirm_attempt(); !st.ok()) {
      storage_fail_stop("dlv confirm");
      return;
    }
  }

  // Committed to the primary before the application hears about it, so a
  // view handler may immediately send into the new view (e.g. a state
  // transfer snapshot).
  mode_ = Mode::InPrimary;
  in_continuity_ = true;
  for (const VsView& v : sequence) {
    if (std::binary_search(v.members.begin(), v.members.end(), me)) {
      emit_view(v);
    }
  }
  if (Status st = persist_meta(); !st.ok()) {
    // The lineage record did not land; the next incarnation would not know
    // it had been in the primary. Stop being one now (the crash emits the
    // VS stop event, which keeps the fail-stop account consistent).
    storage_fail_stop("vs meta");
    return;
  }

  // Release the application messages that were delivered while the decision
  // was in flight: they belong to the newly installed view.
  std::vector<EvsNode::Delivery> buffered;
  buffered.swap(buffered_);
  for (const auto& d : buffered) emit_deliver(d, view_.id);
}

void VsNode::decide_blocked() {
  met_.discarded_blocked.inc(buffered_.size());
  buffered_.clear();
  if (in_continuity_) emit_stop();  // filter rule 2: we left the primary
  mode_ = Mode::Blocked;
}

void VsNode::emit_view(const VsView& v) {
  view_ = v;
  have_view_ = true;
  met_.views_installed.inc();
  if (vs_trace_ != nullptr) {
    VsEvent e;
    e.type = VsEventType::View;
    e.process = vs_identity();
    e.time = sched_.now();
    e.view_id = v.id;
    e.members = v.members;
    e.ord = v.ord;
    vs_trace_->record(std::move(e));
  }
  if (view_handler_) view_handler_(v);
}

void VsNode::emit_deliver(const EvsNode::Delivery& d, std::uint64_t view_id) {
  met_.delivered.inc();
  VsDelivery out;
  out.id = d.id;
  out.service = d.service;
  out.view_id = view_id;
  out.ord = VsOrd{d.ord, 0};
  // Identity of the sender within the view.
  out.vs_sender = vs_synth_id(d.id.sender, 0);
  for (ProcessId m : view_.members) {
    if (vs_base_pid(m) == d.id.sender) {
      out.vs_sender = m;
      break;
    }
  }
  wire::Reader r(d.payload);
  const std::uint8_t tag = r.u8();
  EVS_ASSERT(tag == kFrameApp);
  out.payload = r.bytes();
  EVS_ASSERT(r.done());
  if (vs_trace_ != nullptr) {
    VsEvent e;
    e.type = VsEventType::Deliver;
    e.process = vs_identity();
    e.time = sched_.now();
    e.msg = d.id;
    e.view_id = view_id;
    e.ord = out.ord;
    vs_trace_->record(std::move(e));
  }
  if (deliver_handler_) deliver_handler_(out);
}

void VsNode::emit_stop() {
  met_.stops.inc();
  if (vs_trace_ != nullptr) {
    VsEvent e;
    e.type = VsEventType::Stop;
    e.process = vs_identity();
    e.time = sched_.now();
    vs_trace_->record(std::move(e));
  }
  in_continuity_ = false;
  if (options_.rename_on_rejoin) ++incarnation_;
  // Tolerate a persist failure here: a stale in_continuity_=true record is
  // resolved conservatively by load_meta() (the recovered incarnation
  // re-emits the rename), and emit_stop runs inside crash() — failing the
  // stop would recurse. Safety never depends on this write landing.
  if (Status st = persist_meta(); !st.ok()) {
    EVS_WARN("vs", "%s stop-record persist failed (tolerated)",
             to_string(self_).c_str());
  }
}

}  // namespace evs
