// VsNode: Isis-style virtual synchrony implemented as a filter on top of
// extended virtual synchrony (Section 5 of the paper).
//
// Filter rules (Section 5, applied locally at each process):
//   1. Mask transitional configuration changes; deliveries in a
//      transitional configuration are re-tagged to the preceding regular
//      configuration's view.
//   2. In a regular configuration that is not the primary component, block:
//      reject application sends and discard deliveries until merged back
//      into the primary component. A process leaving the primary emits a
//      VS `stop` event — in the fail-stop world of virtual synchrony a
//      detached process is indistinguishable from a failed one.
//   3. When a primary configuration merges several processes at once, split
//      the single configuration change into one view per joining process,
//      in ascending identifier order.
//   4. A process in a non-primary component that becomes a member of the
//      primary merges via the rule-3 views — under a NEW identity
//      (Section 5.2): its process id is paired with an incremented
//      incarnation number, so the virtually-synchronous world sees the old
//      identity stop forever and a fresh process join.
//
// Primary determination and view agreement: on installing any regular
// configuration, every member broadcasts a small state message (safe
// delivery) carrying its VS identity, its last installed view and — for
// dynamic linear voting — its primary-epoch basis. Once a member has
// delivered all |config| state messages it decides primary/non-primary and
// computes the view sequence deterministically from that common data. Safe
// delivery is what makes this sound: if any member decides, Specification
// 7.1 guarantees every other member (unless it fails) delivers the same
// state messages — in the regular or its transitional configuration — and
// reaches the identical decision, even if the network partitions again
// mid-agreement. This is the paper's own layering argument in executable
// form.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "evs/node.hpp"
#include "spec/vs_checker.hpp"
#include "vs/primary.hpp"

namespace evs {

struct VsView {
  std::uint64_t id{0};
  std::vector<ProcessId> members;  ///< synthesized VS identities, sorted
  VsOrd ord;
};

struct VsDelivery {
  MsgId id;                 ///< EVS message id (sender = raw process id)
  ProcessId vs_sender;      ///< sender's VS identity in the delivery view
  Service service{Service::Safe};
  std::vector<std::uint8_t> payload;
  std::uint64_t view_id{0};
  VsOrd ord;
};

class VsNode {
 public:
  enum class Policy { StaticMajority, DynamicLinearVoting };

  struct Options {
    Policy policy{Policy::StaticMajority};
    std::size_t universe{0};  ///< static majority: total process count
    bool rename_on_rejoin{true};
  };

  enum class Mode { Down, Blocked, Exchanging, InPrimary };

  /// Snapshot of the "vs.*" counters (kept in the underlying EvsNode's
  /// obs::MetricsRegistry; assembled on demand).
  struct Stats {
    std::uint64_t views_installed{0};
    std::uint64_t delivered{0};
    std::uint64_t discarded_blocked{0};
    std::uint64_t sends_rejected{0};
    std::uint64_t exchanges{0};
    std::uint64_t stops{0};
  };

  using ViewHandler = std::function<void(const VsView&)>;
  using DeliverHandler = std::function<void(const VsDelivery&)>;

  VsNode(ProcessId id, Transport& net, StableStore& store, TraceLog* evs_trace,
         VsTraceLog* vs_trace, EvsNode::Options evs_options, Options options);

  /// Register the view-installation callback (uniform setter name across
  /// all node layers).
  void set_on_view_change(ViewHandler h) { view_handler_ = std::move(h); }
  /// Register the delivery callback.
  void set_on_deliver(DeliverHandler h) { deliver_handler_ = std::move(h); }

  void start();
  void crash();

  /// Send within the primary component. Fails with
  /// Errc::blocked_not_primary when this process is blocked in a
  /// non-primary component (filter rule 2). While the primary decision for
  /// a fresh configuration is still in flight the message is accepted and
  /// queued.
  Expected<MsgId> send(std::vector<std::uint8_t> payload,
                       Service service = Service::Safe);

  Mode mode() const { return mode_; }
  bool in_primary() const { return mode_ == Mode::InPrimary; }
  bool running() const { return mode_ != Mode::Down; }
  const VsView& view() const { return view_; }
  ProcessId vs_identity() const { return vs_synth_id(self_, incarnation_); }
  ProcessId id() const { return self_; }
  Stats stats() const;

  EvsNode& evs() { return evs_; }
  const EvsNode& evs() const { return evs_; }

 private:
  struct PeerState {
    ProcessId vs_id;
    std::uint64_t last_view_id{0};
    std::vector<ProcessId> last_view_members;
    PrimaryEpoch dlv_basis;
  };

  void on_evs_config(const Configuration& config);
  void on_evs_deliver(const EvsNode::Delivery& d);
  void handle_state_msg(const EvsNode::Delivery& d);
  void maybe_decide();
  void decide_primary(const std::map<ProcessId, PeerState>& states);
  void decide_blocked();
  void emit_view(const VsView& view);
  void emit_deliver(const EvsNode::Delivery& d, std::uint64_t view_id);
  void emit_stop();
  void send_state_message();
  [[nodiscard]] Status persist_meta();
  [[nodiscard]] Status load_meta();
  /// A safety-bearing persist failed: this process may not keep acting in
  /// (or deciding about) the primary, so it becomes a failed process.
  void storage_fail_stop(const char* where);

  /// Cached "vs.*" instrument handles in the underlying node's registry.
  struct Met {
    obs::Counter& views_installed;
    obs::Counter& delivered;
    obs::Counter& discarded_blocked;
    obs::Counter& sends_rejected;
    obs::Counter& exchanges;
    obs::Counter& stops;
    explicit Met(obs::MetricsRegistry& r);
  };

  ProcessId self_;
  StableStore& store_;
  VsTraceLog* vs_trace_;
  Options options_;
  Scheduler& sched_;
  EvsNode evs_;
  Met met_{evs_.metrics()};

  Mode mode_{Mode::Down};
  VsView view_;                 ///< last installed view (valid in primary)
  bool have_view_{false};
  std::uint32_t incarnation_{0};
  bool in_continuity_{false};   ///< currently part of the primary lineage

  // Exchange state for the current regular configuration.
  std::optional<Configuration> exchange_config_;
  std::map<ProcessId, PeerState> peer_states_;
  std::vector<EvsNode::Delivery> buffered_;         ///< app deliveries awaiting decision
  std::deque<std::pair<Service, std::vector<std::uint8_t>>> pending_sends_;

  std::optional<DlvState> dlv_;

  ViewHandler view_handler_;
  DeliverHandler deliver_handler_;
};

const char* to_string(VsNode::Mode m);

}  // namespace evs
