#include "vs/primary.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wire/codec.hpp"

namespace evs {
namespace {

constexpr const char* kKeyDlv = "dlv_state";

void encode_epoch(wire::Writer& w, const PrimaryEpoch& e) {
  w.u64(e.epoch);
  w.pid_vec(e.members);
}

PrimaryEpoch decode_epoch(wire::Reader& r) {
  PrimaryEpoch e;
  e.epoch = r.u64();
  e.members = r.pid_vec();
  return e;
}

}  // namespace

bool has_majority_of(const std::vector<ProcessId>& members,
                     const std::vector<ProcessId>& basis) {
  std::size_t common = 0;
  for (ProcessId p : basis) {
    if (std::binary_search(members.begin(), members.end(), p)) ++common;
  }
  return 2 * common > basis.size();
}

DlvState::DlvState(StableStore& store, std::vector<ProcessId> initial_members)
    : store_(store) {
  EVS_ASSERT(std::is_sorted(initial_members.begin(), initial_members.end()));
  confirmed_ = PrimaryEpoch{0, std::move(initial_members)};
  load();
}

void DlvState::load() {
  auto blob = store_.get(kKeyDlv);
  if (!blob.has_value()) return;
  wire::Reader r(*blob);
  confirmed_ = decode_epoch(r);
  if (r.boolean()) attempt_ = decode_epoch(r);
  EVS_ASSERT(r.done());
}

Status DlvState::persist() {
  wire::Writer w;
  encode_epoch(w, confirmed_);
  w.boolean(attempt_.has_value());
  if (attempt_.has_value()) encode_epoch(w, *attempt_);
  return store_.put(kKeyDlv, w.take());
}

const PrimaryEpoch& DlvState::basis() const {
  // A pending attempt may have succeeded elsewhere before we crashed or got
  // detached, so it must be treated as the effective last primary.
  return attempt_.has_value() ? *attempt_ : confirmed_;
}

Expected<bool> DlvState::merge_peer(const PrimaryEpoch& peer_basis) {
  if (peer_basis.epoch <= basis().epoch) return false;
  // Newer knowledge: adopt conservatively as an (unconfirmed) attempt.
  attempt_ = peer_basis;
  if (confirmed_.epoch >= attempt_->epoch) attempt_.reset();
  if (Status st = persist(); !st.ok()) return st;
  return true;
}

bool DlvState::decides_primary(const Configuration& config) const {
  return has_majority_of(config.members, basis().members);
}

Expected<PrimaryEpoch> DlvState::begin_attempt(const Configuration& config) {
  EVS_ASSERT_MSG(decides_primary(config), "attempt without a majority of the basis");
  PrimaryEpoch next{basis().epoch + 1, config.members};
  attempt_ = next;
  if (Status st = persist(); !st.ok()) return st;
  return next;
}

Status DlvState::confirm_attempt() {
  EVS_ASSERT(attempt_.has_value());
  confirmed_ = *attempt_;
  attempt_.reset();
  // A failed confirm leaves the persisted attempt pending, which load()
  // already resolves conservatively — but the caller still fail-stops, since
  // nothing else it writes can be trusted either.
  return persist();
}

void DlvState::abort_attempt() {
  // Deliberately keep the attempt record: some member of the attempted
  // configuration may have confirmed it. The attempt remains the basis
  // until superseded by a higher epoch, which is exactly what keeps two
  // rival primaries from forming out of the same predecessor.
}

}  // namespace evs
