// Per-shard replicated KV state machine: the deterministic apply side of
// the sharded service, shared by the sim and live harnesses.
//
// Operations travel as opaque payloads in the shard ring's total order;
// every in-shard replica applies the same sequence to an identical map.
// The codec is deliberately tiny — [op u8][klen u32][key][vlen u32][value],
// little-endian — and strict: a payload that does not parse is counted and
// ignored rather than applied differently on different replicas.
//
// Besides the ordered apply path the store supports the state-transfer /
// anti-entropy machinery (src/shard/transfer.*): an incrementally
// maintained whole-store fingerprint (an order-independent sum of per-entry
// hashes, so it costs O(1) per mutation), and reconcile mutators
// (upsert/erase) that a transfer engine uses to converge a stale replica
// onto a donor's state outside the ring order. Reconcile mutations are
// counted separately from applied ops.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace evs::shard {

enum class KvOp : std::uint8_t {
  Put = 1,
  Del = 2,
};

/// First opcode byte reserved for the state-transfer / anti-entropy message
/// family (src/shard/transfer.*). KvStore::apply rejects them; the agent
/// routes them to its transfer engine before the store ever sees them.
inline constexpr std::uint8_t kTransferOpFirst = 0x10;

/// Encode one operation (Del ignores `value`).
std::vector<std::uint8_t> encode_op(KvOp op, std::string_view key,
                                    std::string_view value);

struct DecodedOp {
  KvOp op;
  std::string_view key;    // views into the encoded buffer
  std::string_view value;
};

/// Strict decode; nullopt on any malformed length/op.
std::optional<DecodedOp> decode_op(std::span<const std::uint8_t> payload);

/// FNV-1a over one entry (key and value, with lengths mixed in so
/// ("ab","c") and ("a","bc") hash apart). The unit of the store fingerprint
/// and of the per-bucket digest fingerprints (src/shard/digest.*).
std::uint64_t entry_hash(std::string_view key, std::string_view value);

/// One shard's key space on one replica. Not thread-safe: the sim harness
/// is single-threaded and the live harness serializes applies per shard on
/// the shard transport's loop thread (reads take the harness lock).
class KvStore {
 public:
  struct Stats {
    std::uint64_t applied{0};        ///< ops applied in total order
    std::uint64_t rejected_decode{0};  ///< malformed payloads ignored
    std::uint64_t reconciled{0};     ///< entries changed by state transfer
  };

  /// Apply the next operation of the shard's total order. Returns the
  /// decoded op (views valid only while `payload` is) so the caller can
  /// observe which key changed, or nullopt when the payload was rejected.
  std::optional<DecodedOp> apply(std::span<const std::uint8_t> payload);

  std::optional<std::string> get(std::string_view key) const;
  std::size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }

  /// Order-independent 64-bit digest of the full contents (wrapping sum of
  /// entry_hash over all entries, folded with the size). Maintained
  /// incrementally; equal stores always produce equal fingerprints.
  std::uint64_t fingerprint() const;

  // --- state-transfer reconcile path (bypasses the ring order) ---
  /// Set `key` to `value` if it differs; true when the store changed.
  bool upsert(std::string_view key, std::string_view value);
  /// Remove `key`; true when it existed.
  bool erase_key(std::string_view key);
  /// Drop all contents AND stats (crash model: the store is volatile app
  /// state, and its applied-op count is a progress marker the transfer
  /// digests compare — a wiped store must not keep claiming progress).
  /// Durable observability lives in the agent's metrics registry instead.
  void clear();

  /// The full map (test/bench support: replica comparison; the transfer
  /// engine's digest and chunk builders iterate it read-only).
  const std::map<std::string, std::string, std::less<>>& contents() const {
    return map_;
  }

 private:
  std::map<std::string, std::string, std::less<>> map_;
  std::uint64_t fp_sum_{0};  ///< wrapping sum of entry_hash over map_
  Stats stats_;
};

}  // namespace evs::shard
