// Per-shard replicated KV state machine: the deterministic apply side of
// the sharded service, shared by the sim and live harnesses.
//
// Operations travel as opaque payloads in the shard ring's total order;
// every in-shard replica applies the same sequence to an identical map.
// The codec is deliberately tiny — [op u8][klen u32][key][vlen u32][value],
// little-endian — and strict: a payload that does not parse is counted and
// ignored rather than applied differently on different replicas.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace evs::shard {

enum class KvOp : std::uint8_t {
  Put = 1,
  Del = 2,
};

/// Encode one operation (Del ignores `value`).
std::vector<std::uint8_t> encode_op(KvOp op, std::string_view key,
                                    std::string_view value);

struct DecodedOp {
  KvOp op;
  std::string_view key;    // views into the encoded buffer
  std::string_view value;
};

/// Strict decode; nullopt on any malformed length/op.
std::optional<DecodedOp> decode_op(std::span<const std::uint8_t> payload);

/// One shard's key space on one replica. Not thread-safe: the sim harness
/// is single-threaded and the live harness serializes applies per shard on
/// the shard transport's loop thread (reads take the harness lock).
class KvStore {
 public:
  struct Stats {
    std::uint64_t applied{0};        ///< ops applied in total order
    std::uint64_t rejected_decode{0};  ///< malformed payloads ignored
  };

  /// Apply the next operation of the shard's total order.
  void apply(std::span<const std::uint8_t> payload);

  std::optional<std::string> get(std::string_view key) const;
  std::size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }

  /// The full map (test/bench support: replica comparison).
  const std::map<std::string, std::string, std::less<>>& contents() const {
    return map_;
  }

 private:
  std::map<std::string, std::string, std::less<>> map_;
  Stats stats_;
};

}  // namespace evs::shard
