// Shard router: the dispatch layer mapping keys -> shard -> replica group.
//
// Shards are fixed in number and anchored at deterministic vids on the key
// circle; a key belongs to the shard whose anchor is its clockwise
// successor (scalio's vid dispatch). Each shard's replica group is the
// first `replication` distinct members clockwise from the shard anchor on
// the MEMBER ring. Both maps are pure functions of (members, seed,
// num_shards, replication): after a membership change every process
// recomputes the identical assignment locally — re-mapping is
// deterministic, coordination-free, and testable by equality.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "shard/hash_ring.hpp"
#include "util/types.hpp"

namespace evs::shard {

using ShardId = std::uint32_t;

class ShardRouter {
 public:
  /// Anchor vids per shard on the KEY circle. With one anchor per shard the
  /// arc lengths are exponentially distributed and a single shard can own
  /// most of the keyspace; 128 anchors even the shares out to a few percent
  /// for small shard counts. (Replica-group derivation still uses the
  /// shard's primary anchor only.)
  static constexpr std::uint32_t kAnchorsPerShard = 128;

  struct Options {
    std::uint32_t num_shards{1};
    std::uint32_t replication{3};  ///< replicas per shard (capped by members)
    std::uint64_t seed{0x5eedull};
    std::uint32_t vids_per_member{HashRing::kDefaultVids};
  };

  explicit ShardRouter(Options options);

  const Options& options() const { return options_; }

  /// Recompute the assignment for a new member set. Order-insensitive and
  /// deterministic; returns true when any shard's replica group changed.
  bool update_members(std::span<const ProcessId> members);

  std::uint32_t num_shards() const { return options_.num_shards; }

  /// Shard owning `key` — a pure function of (key, seed, num_shards),
  /// independent of membership, so keys never migrate between shards when
  /// members come and go (only replica groups move).
  ShardId shard_of_key(std::string_view key) const;

  /// The shard's current replica group (first `replication` distinct
  /// members clockwise from the shard anchor). Empty before update_members.
  const std::vector<ProcessId>& replicas(ShardId shard) const;

  bool is_replica(ShardId shard, ProcessId p) const;

  /// Shards `p` currently replicates, ascending.
  std::vector<ShardId> shards_of(ProcessId p) const;

  /// Order-insensitive fingerprint of the full assignment; equal
  /// fingerprints on two processes mean identical shard maps.
  std::uint64_t assignment_fingerprint() const;

  /// Anchor vid of a shard on the circle (exposed for tests).
  std::uint64_t anchor(ShardId shard) const;

 private:
  Options options_;
  HashRing members_;
  std::vector<std::vector<ProcessId>> groups_;  // shard -> replica group
  /// Sorted (point, shard) table for key dispatch — pure function of
  /// (seed, num_shards), built once at construction.
  std::vector<std::pair<std::uint64_t, ShardId>> key_anchors_;
};

}  // namespace evs::shard
