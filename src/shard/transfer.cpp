#include "shard/transfer.hpp"

#include <algorithm>

#include "wire/codec.hpp"

namespace evs::shard {

using wiredet::get_u32;
using wiredet::get_u64;
using wiredet::put_u32;
using wiredet::put_u64;

namespace {

// Encoded-size bookkeeping for the chunk packer.
constexpr std::size_t kChunkHeaderBytes = 1 + 4 + 4 + 8 + 1 + 4 + 4 + 4;
constexpr std::size_t kChunkCrcBytes = 4;
constexpr std::size_t kBucketHeaderBytes = 4 + 1 + 4;
std::size_t entry_bytes(const ChunkEntry& e) {
  return 4 + e.key.size() + 4 + e.value.size();
}

bool contains(const std::vector<ProcessId>& v, ProcessId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

}  // namespace

// --- codecs ----------------------------------------------------------------

std::vector<std::uint8_t> encode_announce(const DigestAnnounceMsg& m) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(TransferOp::DigestAnnounce));
  put_u32(out, m.sender.value);
  put_u64(out, m.round);
  encode_digest(out, m.digest);
  return out;
}

std::optional<DigestAnnounceMsg> decode_announce(
    std::span<const std::uint8_t> p) {
  if (p.empty() ||
      p[0] != static_cast<std::uint8_t>(TransferOp::DigestAnnounce)) {
    return std::nullopt;
  }
  DigestAnnounceMsg m;
  std::size_t off = 1;
  if (!get_u32(p, off, m.sender.value)) return std::nullopt;
  if (!get_u64(p, off, m.round)) return std::nullopt;
  auto d = decode_digest(p, off);
  if (!d.has_value() || off != p.size()) return std::nullopt;
  m.digest = std::move(*d);
  return m;
}

std::vector<std::uint8_t> encode_request(const TransferRequestMsg& m,
                                         TransferOp op) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(op));
  put_u32(out, m.sender.value);
  put_u64(out, m.session);
  encode_digest(out, m.digest);
  return out;
}

std::optional<TransferRequestMsg> decode_request(
    std::span<const std::uint8_t> p) {
  if (p.empty() ||
      (p[0] != static_cast<std::uint8_t>(TransferOp::TransferRequest) &&
       p[0] != static_cast<std::uint8_t>(TransferOp::ServeClaim))) {
    return std::nullopt;
  }
  TransferRequestMsg m;
  std::size_t off = 1;
  if (!get_u32(p, off, m.sender.value)) return std::nullopt;
  if (!get_u64(p, off, m.session)) return std::nullopt;
  auto d = decode_digest(p, off);
  if (!d.has_value() || off != p.size()) return std::nullopt;
  m.digest = std::move(*d);
  return m;
}

std::vector<std::uint8_t> encode_chunk(const TransferChunkMsg& m) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(TransferOp::TransferChunk));
  put_u32(out, m.donor.value);
  put_u32(out, m.joiner.value);
  put_u64(out, m.session);
  out.push_back(m.flags);
  put_u32(out, m.index);
  put_u32(out, m.count);
  put_u32(out, static_cast<std::uint32_t>(m.buckets.size()));
  for (const ChunkBucket& b : m.buckets) {
    put_u32(out, b.bucket);
    out.push_back(b.complete ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(b.entries.size()));
    for (const ChunkEntry& e : b.entries) {
      put_u32(out, static_cast<std::uint32_t>(e.key.size()));
      out.insert(out.end(), e.key.begin(), e.key.end());
      put_u32(out, static_cast<std::uint32_t>(e.value.size()));
      out.insert(out.end(), e.value.begin(), e.value.end());
    }
  }
  // CRC trailer over everything above: the chunk carries application state,
  // so it gets its own end-to-end check on top of the frame CRC.
  put_u32(out, wire::crc32(out));
  return out;
}

bool chunk_crc_ok(std::span<const std::uint8_t> p) {
  if (p.size() < kChunkHeaderBytes + kChunkCrcBytes) return false;
  std::size_t off = p.size() - kChunkCrcBytes;
  std::uint32_t trailer = 0;
  (void)get_u32(p, off, trailer);
  return wire::crc32(p.first(p.size() - kChunkCrcBytes)) == trailer;
}

std::optional<TransferChunkMsg> decode_chunk(std::span<const std::uint8_t> p) {
  if (p.size() < kChunkHeaderBytes + kChunkCrcBytes ||
      p[0] != static_cast<std::uint8_t>(TransferOp::TransferChunk)) {
    return std::nullopt;
  }
  const std::size_t end = p.size() - kChunkCrcBytes;  // body stops at the CRC
  const auto body = p.first(end);
  TransferChunkMsg m;
  std::size_t off = 1;
  std::uint32_t nbuckets = 0;
  if (!get_u32(body, off, m.donor.value)) return std::nullopt;
  if (!get_u32(body, off, m.joiner.value)) return std::nullopt;
  if (!get_u64(body, off, m.session)) return std::nullopt;
  m.flags = body[off++];
  if (!get_u32(body, off, m.index)) return std::nullopt;
  if (!get_u32(body, off, m.count)) return std::nullopt;
  if (!get_u32(body, off, nbuckets)) return std::nullopt;
  if (m.count == 0 || m.index >= m.count) return std::nullopt;
  if (nbuckets > kMaxDigestBuckets) return std::nullopt;
  m.buckets.reserve(nbuckets);
  const auto* base = reinterpret_cast<const char*>(body.data());
  for (std::uint32_t i = 0; i < nbuckets; ++i) {
    ChunkBucket b;
    std::uint32_t nentries = 0;
    std::uint8_t complete = 0;
    if (!get_u32(body, off, b.bucket)) return std::nullopt;
    if (off >= end) return std::nullopt;
    complete = body[off++];
    if (complete > 1) return std::nullopt;
    b.complete = complete == 1;
    if (!get_u32(body, off, nentries)) return std::nullopt;
    // Each entry consumes at least 8 bytes, so nentries is implicitly
    // bounded by the payload size; check it explicitly anyway.
    if (static_cast<std::size_t>(nentries) * 8 > end - off) return std::nullopt;
    b.entries.reserve(nentries);
    for (std::uint32_t j = 0; j < nentries; ++j) {
      ChunkEntry e;
      std::uint32_t klen = 0;
      std::uint32_t vlen = 0;
      if (!get_u32(body, off, klen)) return std::nullopt;
      if (klen > end - off) return std::nullopt;
      e.key.assign(base + off, klen);
      off += klen;
      if (!get_u32(body, off, vlen)) return std::nullopt;
      if (vlen > end - off) return std::nullopt;
      e.value.assign(base + off, vlen);
      off += vlen;
      b.entries.push_back(std::move(e));
    }
    m.buckets.push_back(std::move(b));
  }
  if (off != end) return std::nullopt;  // strict: no slack bytes
  return m;
}

std::vector<std::uint8_t> encode_repair_request(const RepairRequestMsg& m) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(TransferOp::RepairRequest));
  put_u32(out, m.requester.value);
  put_u32(out, m.authority.value);
  put_u64(out, m.session);
  put_u64(out, m.round);
  put_u32(out, static_cast<std::uint32_t>(m.buckets.size()));
  for (const std::uint32_t b : m.buckets) put_u32(out, b);
  return out;
}

std::optional<RepairRequestMsg> decode_repair_request(
    std::span<const std::uint8_t> p) {
  if (p.empty() ||
      p[0] != static_cast<std::uint8_t>(TransferOp::RepairRequest)) {
    return std::nullopt;
  }
  RepairRequestMsg m;
  std::size_t off = 1;
  std::uint32_t n = 0;
  if (!get_u32(p, off, m.requester.value)) return std::nullopt;
  if (!get_u32(p, off, m.authority.value)) return std::nullopt;
  if (!get_u64(p, off, m.session)) return std::nullopt;
  if (!get_u64(p, off, m.round)) return std::nullopt;
  if (!get_u32(p, off, n)) return std::nullopt;
  if (n > kMaxDigestBuckets) return std::nullopt;
  if (p.size() - off != static_cast<std::size_t>(n) * 4) return std::nullopt;
  m.buckets.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) (void)get_u32(p, off, m.buckets[i]);
  return m;
}

// --- metrics ---------------------------------------------------------------

TransferMet::TransferMet(obs::MetricsRegistry& r)
    : sessions(r.counter("kv.transfer.sessions")),
      completed(r.counter("kv.transfer.completed")),
      aborted(r.counter("kv.transfer.aborted")),
      retries(r.counter("kv.transfer.retries")),
      chunks_sent(r.counter("kv.transfer.chunks_sent")),
      chunks_applied(r.counter("kv.transfer.chunks_applied")),
      bytes_sent(r.counter("kv.transfer.bytes_sent")),
      bytes_applied(r.counter("kv.transfer.bytes_applied")),
      chunk_crc_rejects(r.counter("kv.transfer.chunk_crc_rejects")),
      claims(r.counter("kv.transfer.claims")),
      reads_catching_up(r.counter("kv.reads_catching_up")),
      stale_reads(r.counter("kv.stale_reads")),
      antientropy_rounds(r.counter("kv.antientropy_rounds")),
      antientropy_repairs(r.counter("kv.antientropy_repairs")),
      catch_up_us(r.histogram("kv.transfer.catch_up_us")) {}

// --- engine ----------------------------------------------------------------

TransferEngine::TransferEngine(ProcessId self, TransferConfig cfg)
    : self_(self), cfg_(cfg) {
  if (cfg_.digest_buckets == 0) cfg_.digest_buckets = 1;
}

const StoreDigest& TransferEngine::my_digest(Ctx ctx) {
  if (digest_dirty_) {
    digest_cache_ = compute_digest(ctx.store, cfg_.digest_buckets);
    digest_dirty_ = false;
  } else {
    // applied moves without changing content; keep the marker fresh.
    digest_cache_.applied = ctx.store.stats().applied;
  }
  return digest_cache_;
}

void TransferEngine::note_digest(ProcessId p, const StoreDigest& d,
                                 bool serving) {
  if (p == self_) return;
  Peer& peer = peers_[p];
  peer.serving = serving;
  peer.have_digest = true;
  peer.digest = d;
}

std::size_t TransferEngine::chunk_budget(Ctx ctx) const {
  // Soft ceiling: the smaller of the configured chunk size and the ring's
  // payload limit less framing margin. A single oversized entry still goes
  // alone (the agent caps put() sizes so it always fits the hard limit).
  const std::size_t hard = ctx.node.options().max_payload_bytes;
  std::size_t budget = std::min(cfg_.max_chunk_bytes, hard - hard / 8);
  return std::max<std::size_t>(budget, 512);
}

void TransferEngine::on_regular_config(const Configuration& config, Ctx ctx) {
  members_ = config.members;
  // Beliefs are per-configuration: a peer that was serving before the
  // change may be gone or stale now, and a stale "serving + equal" belief
  // must never clear catching_up. Everyone re-introduces themselves below.
  peers_.clear();
  claim_resolved_ = false;
  donor_resends_.clear();
  repair_ = Repair{};
  ann_.awaiting_self = false;
  ann_.modified_buckets.clear();
  ann_.spurious.clear();
  ann_.spurious_round = 0;
  ann_.next_at = ctx.now + cfg_.antientropy_interval_us;

  // Any in-flight attempt's chunk stream is void across a configuration
  // change (the donor may be gone; the anchor position is meaningless in
  // the new ring): abort, do not wedge. A fresh attempt starts right below
  // if we are still (or newly) in primary.
  const bool had_attempt = join_.attempt_open;
  join_.attempt_open = false;
  join_.anchored = false;
  join_.modified.clear();
  join_.stream = Stream{};
  join_.retries = 0;
  join_.backoff_level = 0;
  join_.next_attempt_at = 0;
  if (had_attempt) ctx.met.aborted.inc();

  std::size_t present = 0;
  for (const ProcessId p : ctx.assigned) {
    if (config.contains(p)) ++present;
  }
  in_primary_ = !ctx.assigned.empty() && present * 2 > ctx.assigned.size();

  if (!in_primary_) {
    was_out_ = true;
    return;
  }
  if (was_out_) {
    // First config back in primary after being out: this replica may have
    // missed writes ordered while it was away — gate reads until a digest
    // proves otherwise or a donor ships the delta.
    was_out_ = false;
    if (!catching_up_) {
      start_catching_up(ctx);
      return;
    }
    start_attempt(ctx);
    return;
  }
  if (catching_up_) {
    // Reconfigured mid-catch-up while staying in primary: restart.
    start_attempt(ctx);
    return;
  }
  // Serving through the change: announce immediately, INSIDE the install
  // callback, so the announce precedes any post-install submission in the
  // new ring's order — joiners see a serving donor before the first write.
  announce(ctx);
}

void TransferEngine::start_catching_up(Ctx ctx) {
  catching_up_ = true;
  join_ = Join{};
  join_.started_at = ctx.now;
  start_attempt(ctx);
}

void TransferEngine::start_attempt(Ctx ctx) {
  join_.session = ++session_counter_;
  join_.anchored = false;
  join_.modified.clear();
  join_.stream = Stream{};
  TransferRequestMsg m{self_, join_.session, my_digest(ctx)};
  std::vector<std::vector<std::uint8_t>> batch;
  batch.push_back(encode_request(m, TransferOp::TransferRequest));
  auto sent = ctx.node.send_batch(Service::Safe, std::move(batch));
  if (!sent.ok()) {
    // Ring backpressure; the next tick retries cheaply.
    join_.attempt_open = false;
    join_.next_attempt_at = ctx.now + cfg_.tick_interval_us;
    return;
  }
  join_.attempt_open = true;
  join_.deadline = ctx.now + cfg_.request_timeout_us;
  ctx.met.sessions.inc();
}

void TransferEngine::abort_attempt(bool backoff, Ctx ctx) {
  join_.attempt_open = false;
  join_.anchored = false;
  join_.modified.clear();
  join_.stream = Stream{};
  ctx.met.aborted.inc();
  if (!backoff) {
    join_.next_attempt_at = ctx.now;
    return;
  }
  ++join_.retries;
  ctx.met.retries.inc();
  SimTime delay = cfg_.request_timeout_us;
  for (std::uint32_t i = 0; i < join_.backoff_level && delay < cfg_.backoff_cap_us;
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, cfg_.backoff_cap_us);
  if (join_.backoff_level < 16) ++join_.backoff_level;
  join_.next_attempt_at = ctx.now + delay;
}

void TransferEngine::complete_catch_up(Ctx ctx) {
  catching_up_ = false;
  ctx.met.completed.inc();
  ctx.met.catch_up_us.record(ctx.now - join_.started_at);
  join_ = Join{};
}

void TransferEngine::rules_check(Ctx ctx) {
  if (!catching_up_ || !in_primary_) return;
  const StoreDigest& mine = my_digest(ctx);
  // Rule A: a serving peer provably holds exactly my content — nothing to
  // transfer, open the gate.
  for (const auto& [p, peer] : peers_) {
    if (peer.serving && peer.have_digest && contains(members_, p) &&
        same_content(peer.digest, mine)) {
      complete_catch_up(ctx);
      return;
    }
  }
  // Rule B (birth / full-group restart with equal stores): every assigned
  // replica in the configuration has introduced itself, nobody serves, and
  // all contents are equal — there is no donor to wait for and no delta to
  // ship, so everyone opens deterministically.
  for (const ProcessId p : ctx.assigned) {
    if (p == self_ || !contains(members_, p)) continue;
    const auto it = peers_.find(p);
    if (it == peers_.end() || !it->second.have_digest) return;
    if (it->second.serving) return;
    if (!same_content(it->second.digest, mine)) return;
  }
  complete_catch_up(ctx);
}

bool TransferEngine::should_claim(Ctx ctx) const {
  // ServeClaim: last resort for the nobody-can-serve wedge (e.g. a majority
  // crash wiped stores mid-flight, so every replica is catching up and no
  // two are content-equal). Claim only with full knowledge and only from
  // the best-progressed replica, so committed writes held by ANY surviving
  // replica are never abandoned for an emptier store.
  if (claim_resolved_ || join_.retries < 1) return false;
  const std::uint64_t mine_applied = ctx.store.stats().applied;
  for (const auto& [p, peer] : peers_) {
    if (peer.serving && contains(members_, p)) return false;
  }
  for (const ProcessId p : ctx.assigned) {
    if (p == self_ || !contains(members_, p)) continue;
    const auto it = peers_.find(p);
    if (it == peers_.end() || !it->second.have_digest) return false;
    if (it->second.digest.applied > mine_applied) return false;
    if (it->second.digest.applied == mine_applied && p < self_) return false;
  }
  return true;
}

bool TransferEngine::is_donor(Ctx ctx) const {
  (void)ctx;
  if (!serving()) return false;
  // Deterministic-enough election: the lowest-id replica BELIEVED serving
  // donates. Beliefs come from delivered messages, so replicas that share a
  // delivery prefix agree; at worst two serving replicas both respond and
  // the joiner ignores the rival stream (reconcile is idempotent anyway).
  for (const auto& [p, peer] : peers_) {
    if (peer.serving && p < self_ && contains(members_, p)) return false;
  }
  return true;
}

void TransferEngine::announce(Ctx ctx) {
  DigestAnnounceMsg m{self_, ann_round_ + 1, my_digest(ctx)};
  std::vector<std::vector<std::uint8_t>> batch;
  batch.push_back(encode_announce(m));
  auto sent = ctx.node.send_batch(Service::Safe, std::move(batch));
  if (!sent.ok()) return;  // skip the round; the next tick re-evaluates
  ann_round_ = m.round;
  ann_.round = m.round;
  ann_.awaiting_self = true;
  ann_.modified_buckets.clear();
  ctx.met.antientropy_rounds.inc();
}

void TransferEngine::respond_to_request(const TransferRequestMsg& m, Ctx ctx) {
  const StoreDigest& mine = my_digest(ctx);
  std::vector<std::uint32_t> buckets;
  if (!same_content(mine, m.digest)) {
    if (mine.buckets.size() != m.digest.buckets.size()) {
      // Incomparable digests (misconfigured bucket count): ship everything.
      buckets.resize(mine.buckets.size());
      for (std::uint32_t i = 0; i < buckets.size(); ++i) buckets[i] = i;
    } else {
      buckets = diff_buckets(mine, m.digest);
    }
  }
  send_chunks(m.sender, m.session, /*repair=*/false, buckets, ctx);
}

void TransferEngine::send_chunks(ProcessId joiner, std::uint64_t session,
                                 bool repair,
                                 const std::vector<std::uint32_t>& buckets,
                                 Ctx ctx) {
  // Collect the requested buckets' entries in one store pass. Buckets with
  // no local entries still ship (empty): the receiver must erase extras.
  std::map<std::uint32_t, std::vector<ChunkEntry>> per_bucket;
  for (const std::uint32_t b : buckets) per_bucket[b];
  if (!per_bucket.empty()) {
    for (const auto& [k, v] : ctx.store.contents()) {
      const auto it = per_bucket.find(bucket_of(k, cfg_.digest_buckets));
      if (it != per_bucket.end()) it->second.push_back(ChunkEntry{k, v});
    }
  }

  // Pack complete buckets greedily up to the byte budget; a bucket that
  // cannot fit is split into consecutive parts (complete flag on the last).
  const std::size_t budget = chunk_budget(ctx);
  std::vector<TransferChunkMsg> chunks;
  TransferChunkMsg cur;
  std::size_t cur_bytes = kChunkHeaderBytes + kChunkCrcBytes;
  const auto fresh = [&] {
    TransferChunkMsg c;
    c.donor = self_;
    c.joiner = joiner;
    c.session = session;
    c.flags = repair ? kChunkFlagRepair : 0;
    return c;
  };
  cur = fresh();
  const auto flush = [&] {
    chunks.push_back(std::move(cur));
    cur = fresh();
    cur_bytes = kChunkHeaderBytes + kChunkCrcBytes;
  };
  for (auto& [bucket, entries] : per_bucket) {
    if (!cur.buckets.empty() && cur_bytes + kBucketHeaderBytes >= budget) {
      flush();
    }
    ChunkBucket cb;
    cb.bucket = bucket;
    cur_bytes += kBucketHeaderBytes;
    for (ChunkEntry& e : entries) {
      const std::size_t esz = entry_bytes(e);
      if (cur_bytes + esz > budget &&
          (!cb.entries.empty() || !cur.buckets.empty())) {
        if (!cb.entries.empty()) {
          cb.complete = false;  // more parts of this bucket follow
          cur.buckets.push_back(std::move(cb));
          cb = ChunkBucket{};
          cb.bucket = bucket;
        }
        flush();
        cur_bytes += kBucketHeaderBytes;
      }
      cur_bytes += esz;
      cb.entries.push_back(std::move(e));
    }
    cb.complete = true;
    cur.buckets.push_back(std::move(cb));
  }
  if (!cur.buckets.empty() || chunks.empty()) flush();
  // chunks.empty() above covers the nothing-to-transfer case: one empty
  // chunk is the completion signal the joiner needs to open its gate.

  std::vector<std::vector<std::uint8_t>> encoded;
  encoded.reserve(chunks.size());
  std::size_t bytes = 0;
  for (std::uint32_t i = 0; i < chunks.size(); ++i) {
    chunks[i].index = i;
    chunks[i].count = static_cast<std::uint32_t>(chunks.size());
    encoded.push_back(encode_chunk(chunks[i]));
    bytes += encoded.back().size();
  }

  auto attempt = encoded;  // keep the originals for backpressure resend
  auto sent = ctx.node.send_batch(Service::Safe, std::move(attempt));
  if (sent.ok()) {
    ctx.met.chunks_sent.inc(encoded.size());
    ctx.met.bytes_sent.inc(bytes);
    return;
  }
  DonorResend d;
  d.joiner = joiner;
  d.session = session;
  d.chunks = std::move(encoded);
  d.retry_at = ctx.now + cfg_.tick_interval_us;
  d.attempts = 1;
  donor_resends_.push_back(std::move(d));
}

bool TransferEngine::reconcile_bucket(
    std::uint32_t bucket, const std::vector<ChunkEntry>& entries,
    const std::set<std::string, std::less<>>& skip, Ctx ctx) {
  bool changed = false;
  std::set<std::string_view> incoming;
  for (const ChunkEntry& e : entries) incoming.insert(e.key);
  // Erase local keys of this bucket the donor does not have — except keys
  // this replica applied since the anchor (both sides hold the post-write
  // value for those; the donor's snapshot merely predates it).
  std::vector<std::string> extras;
  for (const auto& [k, v] : ctx.store.contents()) {
    if (bucket_of(k, cfg_.digest_buckets) != bucket) continue;
    if (incoming.count(k) != 0 || skip.count(k) != 0) continue;
    extras.push_back(k);
  }
  for (const std::string& k : extras) changed |= ctx.store.erase_key(k);
  for (const ChunkEntry& e : entries) {
    if (skip.count(e.key) != 0) continue;
    changed |= ctx.store.upsert(e.key, e.value);
  }
  if (changed) digest_dirty_ = true;
  return changed;
}

TransferEngine::ChunkVerdict TransferEngine::accept_chunk(
    Stream& s, const std::set<std::string, std::less<>>& skip,
    const TransferChunkMsg& m, bool count_repairs, Ctx ctx) {
  if (!s.donor_locked) {
    if (m.index != 0) return ChunkVerdict::ignored;  // rival mid-stream
    s.donor_locked = true;
    s.donor = m.donor;
    s.count = m.count;
    s.next_index = 0;
  } else if (m.donor != s.donor) {
    return ChunkVerdict::ignored;  // a second donor also answered; one wins
  }
  if (m.index != s.next_index || m.count != s.count) {
    return ChunkVerdict::violation;  // torn stream
  }
  ++s.next_index;
  for (const ChunkBucket& b : m.buckets) {
    if (s.partial_bucket.has_value()) {
      if (b.bucket != *s.partial_bucket) return ChunkVerdict::violation;
      s.partial_entries.insert(s.partial_entries.end(), b.entries.begin(),
                               b.entries.end());
      if (b.complete) {
        const bool changed =
            reconcile_bucket(b.bucket, s.partial_entries, skip, ctx);
        if (count_repairs && changed) ctx.met.antientropy_repairs.inc();
        s.partial_bucket.reset();
        s.partial_entries.clear();
      }
    } else if (b.complete) {
      const bool changed = reconcile_bucket(b.bucket, b.entries, skip, ctx);
      if (count_repairs && changed) ctx.met.antientropy_repairs.inc();
    } else {
      s.partial_bucket = b.bucket;
      s.partial_entries = b.entries;
    }
  }
  if (s.next_index == s.count) {
    if (s.partial_bucket.has_value()) return ChunkVerdict::violation;
    return ChunkVerdict::completed;
  }
  return ChunkVerdict::progressed;
}

void TransferEngine::handle_announce(const DigestAnnounceMsg& m, Ctx ctx) {
  note_digest(m.sender, m.digest, /*serving=*/true);
  if (m.sender == self_) {
    if (ann_.awaiting_self && m.round == ann_.round) {
      // The spurious window closes: buckets we modified between queueing
      // the announce and this delivery are exactly the buckets receivers
      // will flag without being divergent (they compare their CURRENT store
      // against our PRE-QUEUE digest, and they applied those same writes).
      ann_.awaiting_self = false;
      ann_.spurious = std::move(ann_.modified_buckets);
      ann_.modified_buckets.clear();
      ann_.spurious_round = m.round;
    }
    return;
  }
  if (catching_up_) {
    rules_check(ctx);
    return;
  }
  if (!serving() || cfg_.antientropy_interval_us == 0) return;
  if (repair_.active) return;  // one repair session at a time
  const StoreDigest& mine = my_digest(ctx);
  if (same_content(mine, m.digest)) return;
  if (mine.buckets.size() != m.digest.buckets.size()) return;
  const auto diffs = diff_buckets(mine, m.digest);
  if (diffs.empty()) return;
  RepairRequestMsg r{self_, m.sender, ++session_counter_, m.round, diffs};
  std::vector<std::vector<std::uint8_t>> batch;
  batch.push_back(encode_repair_request(r));
  auto sent = ctx.node.send_batch(Service::Safe, std::move(batch));
  if (!sent.ok()) return;  // next announce round retries
  repair_ = Repair{};
  repair_.active = true;
  repair_.session = r.session;
  repair_.authority = m.sender;
  repair_.deadline = ctx.now + cfg_.repair_timeout_us;
}

void TransferEngine::handle_request(const TransferRequestMsg& m, Ctx ctx) {
  note_digest(m.sender, m.digest, /*serving=*/false);
  if (m.sender == self_) {
    if (catching_up_ && join_.attempt_open && m.session == join_.session) {
      // Anchor: from this total-order position on, any key this replica
      // applies is recorded and skipped during reconcile. The donor builds
      // its chunks at this SAME position (the same message's delivery), so
      // the skip-set covers exactly the writes its snapshot cannot know.
      join_.anchored = true;
      join_.modified.clear();
    }
    rules_check(ctx);
    return;
  }
  rules_check(ctx);
  if (is_donor(ctx)) respond_to_request(m, ctx);
}

void TransferEngine::handle_claim(const TransferRequestMsg& m, Ctx ctx) {
  note_digest(m.sender, m.digest, /*serving=*/false);
  if (claim_resolved_) return;  // first claim after the config change wins
  claim_resolved_ = true;
  if (m.sender == self_) {
    if (catching_up_) complete_catch_up(ctx);
    return;
  }
  if (peers_.count(m.sender) != 0) peers_[m.sender].serving = true;
  if (catching_up_) {
    // A donor exists now; restart the attempt against it promptly (rule A
    // may even clear without chunks if the winner's content equals ours).
    rules_check(ctx);
    if (catching_up_) {
      if (join_.attempt_open) {
        abort_attempt(/*backoff=*/false, ctx);
      } else {
        join_.next_attempt_at = ctx.now;
      }
    }
  }
}

void TransferEngine::handle_chunk(const TransferChunkMsg& m,
                                  std::size_t payload_bytes, Ctx ctx) {
  // Everyone on the ring sees the chunk: its donor is necessarily serving.
  if (m.donor != self_ && peers_.count(m.donor) != 0) {
    peers_[m.donor].serving = true;
  }
  if (m.joiner != self_) return;
  if ((m.flags & kChunkFlagRepair) != 0) {
    if (!repair_.active || m.session != repair_.session || !repair_.anchored) {
      return;
    }
    const ChunkVerdict v =
        accept_chunk(repair_.stream, repair_.modified, m, true, ctx);
    if (v == ChunkVerdict::ignored) return;
    if (v == ChunkVerdict::violation) {
      repair_ = Repair{};  // abandon; the next announce round re-detects
      return;
    }
    ctx.met.chunks_applied.inc();
    ctx.met.bytes_applied.inc(payload_bytes);
    if (v == ChunkVerdict::completed) repair_ = Repair{};
    return;
  }
  if (!catching_up_ || !join_.attempt_open || m.session != join_.session ||
      !join_.anchored) {
    return;  // stale session (aborted attempt, config change, duplicate)
  }
  const ChunkVerdict v =
      accept_chunk(join_.stream, join_.modified, m, false, ctx);
  if (v == ChunkVerdict::ignored) return;
  if (v == ChunkVerdict::violation) {
    abort_attempt(/*backoff=*/true, ctx);
    return;
  }
  ctx.met.chunks_applied.inc();
  ctx.met.bytes_applied.inc(payload_bytes);
  if (v == ChunkVerdict::completed) {
    complete_catch_up(ctx);
  } else {
    // Forward progress: push the deadline out so a long multi-chunk
    // transfer on a slow ring is not falsely aborted mid-stream.
    join_.deadline = ctx.now + cfg_.request_timeout_us;
  }
}

void TransferEngine::handle_repair_request(const RepairRequestMsg& m,
                                           Ctx ctx) {
  if (m.requester == self_) {
    if (repair_.active && m.session == repair_.session) {
      repair_.anchored = true;  // same anchor position the authority builds at
      repair_.modified.clear();
    }
    return;
  }
  // Only serving replicas run repairs; remember that about the requester.
  if (peers_.count(m.requester) != 0) peers_[m.requester].serving = true;
  if (m.authority != self_ || !serving()) return;
  if (m.round != ann_.spurious_round) return;  // stale announce round
  std::vector<std::uint32_t> buckets;
  for (const std::uint32_t b : m.buckets) {
    if (ann_.spurious.count(b) == 0) buckets.push_back(b);
  }
  // All-spurious requests still get the empty completion chunk so the
  // requester closes its session instead of waiting out the deadline.
  send_chunks(m.requester, m.session, /*repair=*/true, buckets, ctx);
}

bool TransferEngine::handle_payload(std::span<const std::uint8_t> payload,
                                    Ctx ctx) {
  if (payload.empty() || payload[0] < kTransferOpFirst ||
      payload[0] > kTransferOpLast) {
    return false;
  }
  switch (static_cast<TransferOp>(payload[0])) {
    case TransferOp::DigestAnnounce: {
      const auto m = decode_announce(payload);
      if (!m.has_value()) return false;
      handle_announce(*m, ctx);
      return true;
    }
    case TransferOp::TransferRequest: {
      const auto m = decode_request(payload);
      if (!m.has_value()) return false;
      handle_request(*m, ctx);
      return true;
    }
    case TransferOp::ServeClaim: {
      const auto m = decode_request(payload);
      if (!m.has_value()) return false;
      handle_claim(*m, ctx);
      return true;
    }
    case TransferOp::TransferChunk: {
      if (!chunk_crc_ok(payload)) {
        // A counted transfer event, not a decode reject: transfers recover
        // via the stream deadline, and the metric is the tripwire.
        ctx.met.chunk_crc_rejects.inc();
        return true;
      }
      const auto m = decode_chunk(payload);
      if (!m.has_value()) return false;
      handle_chunk(*m, payload.size(), ctx);
      return true;
    }
    case TransferOp::RepairRequest: {
      const auto m = decode_repair_request(payload);
      if (!m.has_value()) return false;
      handle_repair_request(*m, ctx);
      return true;
    }
  }
  return false;
}

void TransferEngine::on_kv_applied(std::string_view key) {
  digest_dirty_ = true;
  if (catching_up_ && join_.anchored) join_.modified.insert(std::string(key));
  if (repair_.active && repair_.anchored) {
    repair_.modified.insert(std::string(key));
  }
  if (ann_.awaiting_self) {
    ann_.modified_buckets.insert(bucket_of(key, cfg_.digest_buckets));
  }
}

void TransferEngine::tick(Ctx ctx) {
  if (!ctx.node.running()) return;
  if (in_primary_ && catching_up_) {
    if (join_.attempt_open && ctx.now >= join_.deadline) {
      abort_attempt(/*backoff=*/true, ctx);
    }
    if (!join_.attempt_open && ctx.now >= join_.next_attempt_at) {
      if (should_claim(ctx)) {
        TransferRequestMsg m{self_, ++session_counter_, my_digest(ctx)};
        std::vector<std::vector<std::uint8_t>> batch;
        batch.push_back(encode_request(m, TransferOp::ServeClaim));
        auto sent = ctx.node.send_batch(Service::Safe, std::move(batch));
        if (sent.ok()) {
          ctx.met.claims.inc();
          // If the claim loses (or is lost), fall back to requesting.
          join_.next_attempt_at = ctx.now + cfg_.request_timeout_us;
        }
      } else {
        start_attempt(ctx);
      }
    }
  }
  for (auto it = donor_resends_.begin(); it != donor_resends_.end();) {
    if (ctx.now < it->retry_at) {
      ++it;
      continue;
    }
    auto attempt = it->chunks;
    auto sent = ctx.node.send_batch(Service::Safe, std::move(attempt));
    if (sent.ok()) {
      std::size_t bytes = 0;
      for (const auto& c : it->chunks) bytes += c.size();
      ctx.met.chunks_sent.inc(it->chunks.size());
      ctx.met.bytes_sent.inc(bytes);
      it = donor_resends_.erase(it);
      continue;
    }
    ++it->attempts;
    if (it->attempts > cfg_.donor_max_attempts) {
      // Give up; the joiner's own deadline/retry restarts the session.
      it = donor_resends_.erase(it);
      continue;
    }
    it->retry_at = ctx.now + cfg_.tick_interval_us;
    ++it;
  }
  if (serving() && cfg_.antientropy_interval_us > 0 && ctx.now >= ann_.next_at) {
    ann_.next_at = ctx.now + cfg_.antientropy_interval_us;
    // Single authority per round: the lowest-id believed-serving replica.
    if (is_donor(ctx)) announce(ctx);
  }
  if (repair_.active && ctx.now >= repair_.deadline) {
    repair_ = Repair{};  // authority gone or stream stalled; re-detect later
  }
}

void TransferEngine::reset_for_crash() {
  // Volatile state only; session/round counters stay monotone so payloads
  // from a previous incarnation can never alias a fresh session.
  members_.clear();
  in_primary_ = false;
  was_out_ = true;
  catching_up_ = false;
  claim_resolved_ = false;
  peers_.clear();
  digest_dirty_ = true;
  digest_cache_ = StoreDigest{};
  join_ = Join{};
  donor_resends_.clear();
  ann_ = Announce{};
  repair_ = Repair{};
}

}  // namespace evs::shard
