// Consistent-hash vid ring for shard dispatch (scalio kv_ring / FawnKV Ring
// style): members project a fixed number of virtual points ("vids") onto a
// uint64 circle, and a lookup walks clockwise to the successor point. The
// map is a pure function of (members, seed) — every process that knows the
// member set computes the identical ring with no coordination, which is the
// property the sharded KV layer leans on across membership changes.
//
// Layering: shard/ sits beside apps/ ON TOP of evs/ — it knows about
// ProcessIds and hashing, never about tokens or configurations.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace evs::shard {

/// Deterministic 64-bit mix (splitmix64 finalizer). Stable across runs,
/// platforms and processes — the ring must never depend on std::hash.
std::uint64_t mix64(std::uint64_t x);

/// Hash of an arbitrary byte string under a seed (FNV-1a folded through
/// mix64). Used for keys and for member/shard point derivation.
std::uint64_t hash_bytes(std::uint64_t seed, std::string_view bytes);

class HashRing {
 public:
  /// Points per member on the circle. More vids smooth the key distribution
  /// and the remap churn per membership change; 64 keeps both under a few
  /// percent for double-digit member counts.
  static constexpr std::uint32_t kDefaultVids = 64;

  HashRing() = default;

  /// Rebuild the circle for `members` (order-insensitive: the input is
  /// sorted internally, so any permutation of the same set yields the same
  /// ring). Duplicate ids collapse.
  void rebuild(std::span<const ProcessId> members, std::uint64_t seed,
               std::uint32_t vids_per_member = kDefaultVids);

  bool empty() const { return circle_.empty(); }
  std::size_t member_count() const { return member_count_; }

  /// Successor member for a point on the circle (the owner of `point`).
  ProcessId successor(std::uint64_t point) const;

  /// First `n` DISTINCT members clockwise from `point` — the replica group
  /// anchored at a shard's vid. Returns fewer when the ring has fewer
  /// members than n. Deterministic for a given (members, seed).
  std::vector<ProcessId> successors(std::uint64_t point, std::size_t n) const;

 private:
  // vid -> member. std::map gives ordered successor lookup; rebuilds are
  // rare (membership changes), lookups are the common case.
  std::map<std::uint64_t, ProcessId> circle_;
  std::size_t member_count_{0};
};

}  // namespace evs::shard
