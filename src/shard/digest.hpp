// Store digests for shard state transfer and anti-entropy (DESIGN.md
// "State transfer & anti-entropy").
//
// A digest summarizes one replica's shard store as an applied-op progress
// marker, a whole-store fingerprint, and B per-bucket fingerprints, where a
// key's bucket is hash(key) % B. Two replicas compare digests to decide
// (a) whether they hold byte-identical state (fingerprint equality — the
// basis for clearing `catching_up` without shipping anything) and
// (b) which buckets differ (the donor ships only those buckets, so
// transfer bytes scale with the delta, not the store).
//
// Bucket fingerprints are order-independent wrapping sums of per-entry
// hashes, so the same contents always digest identically regardless of
// mutation history. `applied` is informational only: replicas with
// different delivery histories can hold equal content at different applied
// counts, so equality decisions MUST use same_content(), never applied.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "shard/kv_store.hpp"

namespace evs::shard {

struct StoreDigest {
  std::uint64_t applied{0};      ///< ops applied (progress marker only)
  std::uint64_t fingerprint{0};  ///< KvStore::fingerprint()
  std::vector<std::uint64_t> buckets;  ///< per-bucket content fingerprints
};

/// The bucket a key belongs to, for `nbuckets` buckets (nbuckets >= 1).
std::uint32_t bucket_of(std::string_view key, std::uint32_t nbuckets);

/// Digest the full store into `nbuckets` buckets. O(store).
StoreDigest compute_digest(const KvStore& store, std::uint32_t nbuckets);

/// Content equality: fingerprints and bucket vectors equal. Ignores
/// `applied` (see the header comment for why).
bool same_content(const StoreDigest& a, const StoreDigest& b);

/// Buckets whose fingerprints differ between `mine` and `theirs` — the set
/// a donor must ship. Empty when bucket counts mismatch (incomparable:
/// differently-configured peers must not guess at each other's deltas).
std::vector<std::uint32_t> diff_buckets(const StoreDigest& mine,
                                        const StoreDigest& theirs);

/// Wire helpers shared by the digest and transfer codecs (little-endian,
/// matching the kv op codec).
namespace wiredet {
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Bounded reads: false when fewer than 4/8 bytes remain at `off`; on
/// success advances `off` past the value.
bool get_u32(std::span<const std::uint8_t> b, std::size_t& off,
             std::uint32_t& v);
bool get_u64(std::span<const std::uint8_t> b, std::size_t& off,
             std::uint64_t& v);
}  // namespace wiredet

/// Decode-side cap on the bucket vector (a hostile digest must not make a
/// replica allocate unboundedly).
inline constexpr std::uint32_t kMaxDigestBuckets = 1u << 16;

/// Append the digest's wire form: [u64 applied][u64 fp][u32 n][u64 x n].
void encode_digest(std::vector<std::uint8_t>& out, const StoreDigest& d);

/// Strict bounded decode at `off`; advances `off` on success.
std::optional<StoreDigest> decode_digest(std::span<const std::uint8_t> b,
                                         std::size_t& off);

}  // namespace evs::shard
