#include "shard/kv_store.hpp"

namespace evs::shard {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t entry_hash(std::string_view key, std::string_view value) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, key.size());
  h = fnv1a(h, key);
  h = fnv1a_u64(h, value.size());
  h = fnv1a(h, value);
  // An entry hash of 0 would be invisible to the wrapping sum; remap it.
  return h == 0 ? 1 : h;
}

std::vector<std::uint8_t> encode_op(KvOp op, std::string_view key,
                                    std::string_view value) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + key.size() + 4 + value.size());
  out.push_back(static_cast<std::uint8_t>(op));
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  const std::string_view v = op == KvOp::Del ? std::string_view{} : value;
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

std::optional<DecodedOp> decode_op(std::span<const std::uint8_t> payload) {
  if (payload.size() < 1 + 4) return std::nullopt;
  const auto op = static_cast<KvOp>(payload[0]);
  if (op != KvOp::Put && op != KvOp::Del) return std::nullopt;
  const std::uint32_t klen = get_u32(payload, 1);
  std::size_t off = 1 + 4;
  if (payload.size() - off < klen) return std::nullopt;
  const auto* base = reinterpret_cast<const char*>(payload.data());
  const std::string_view key(base + off, klen);
  off += klen;
  if (payload.size() - off < 4) return std::nullopt;
  const std::uint32_t vlen = get_u32(payload, off);
  off += 4;
  if (payload.size() - off != vlen) return std::nullopt;  // strict: no slack
  const std::string_view value(base + off, vlen);
  return DecodedOp{op, key, value};
}

std::optional<DecodedOp> KvStore::apply(std::span<const std::uint8_t> payload) {
  const auto d = decode_op(payload);
  if (!d.has_value()) {
    ++stats_.rejected_decode;
    return std::nullopt;
  }
  switch (d->op) {
    case KvOp::Put: {
      const auto it = map_.find(d->key);
      if (it != map_.end()) {
        fp_sum_ -= entry_hash(it->first, it->second);
        it->second.assign(d->value);
        fp_sum_ += entry_hash(it->first, it->second);
      } else {
        map_.emplace(std::string(d->key), std::string(d->value));
        fp_sum_ += entry_hash(d->key, d->value);
      }
      break;
    }
    case KvOp::Del: {
      const auto it = map_.find(d->key);
      if (it != map_.end()) {
        fp_sum_ -= entry_hash(it->first, it->second);
        map_.erase(it);
      }
      break;
    }
  }
  ++stats_.applied;
  return d;
}

std::optional<std::string> KvStore::get(std::string_view key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t KvStore::fingerprint() const {
  // Fold the size in so {} and a hash-collision pair stay distinguishable
  // by cardinality at least.
  return fnv1a_u64(fnv1a_u64(kFnvOffset, fp_sum_), map_.size());
}

bool KvStore::upsert(std::string_view key, std::string_view value) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second == value) return false;
    fp_sum_ -= entry_hash(it->first, it->second);
    it->second.assign(value);
    fp_sum_ += entry_hash(it->first, it->second);
  } else {
    map_.emplace(std::string(key), std::string(value));
    fp_sum_ += entry_hash(key, value);
  }
  ++stats_.reconciled;
  return true;
}

bool KvStore::erase_key(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  fp_sum_ -= entry_hash(it->first, it->second);
  map_.erase(it);
  ++stats_.reconciled;
  return true;
}

void KvStore::clear() {
  map_.clear();
  fp_sum_ = 0;
  stats_ = Stats{};
}

}  // namespace evs::shard
