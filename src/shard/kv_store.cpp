#include "shard/kv_store.hpp"

namespace evs::shard {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encode_op(KvOp op, std::string_view key,
                                    std::string_view value) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + key.size() + 4 + value.size());
  out.push_back(static_cast<std::uint8_t>(op));
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  const std::string_view v = op == KvOp::Del ? std::string_view{} : value;
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

std::optional<DecodedOp> decode_op(std::span<const std::uint8_t> payload) {
  if (payload.size() < 1 + 4) return std::nullopt;
  const auto op = static_cast<KvOp>(payload[0]);
  if (op != KvOp::Put && op != KvOp::Del) return std::nullopt;
  const std::uint32_t klen = get_u32(payload, 1);
  std::size_t off = 1 + 4;
  if (payload.size() - off < klen) return std::nullopt;
  const auto* base = reinterpret_cast<const char*>(payload.data());
  const std::string_view key(base + off, klen);
  off += klen;
  if (payload.size() - off < 4) return std::nullopt;
  const std::uint32_t vlen = get_u32(payload, off);
  off += 4;
  if (payload.size() - off != vlen) return std::nullopt;  // strict: no slack
  const std::string_view value(base + off, vlen);
  return DecodedOp{op, key, value};
}

void KvStore::apply(std::span<const std::uint8_t> payload) {
  const auto d = decode_op(payload);
  if (!d.has_value()) {
    ++stats_.rejected_decode;
    return;
  }
  switch (d->op) {
    case KvOp::Put:
      map_.insert_or_assign(std::string(d->key), std::string(d->value));
      break;
    case KvOp::Del:
      map_.erase(std::string(d->key));
      break;
  }
  ++stats_.applied;
}

std::optional<std::string> KvStore::get(std::string_view key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace evs::shard
