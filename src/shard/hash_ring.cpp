#include "shard/hash_ring.hpp"

#include <algorithm>

namespace evs::shard {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(std::uint64_t seed, std::string_view bytes) {
  // FNV-1a over the bytes, then mixed with the seed: FNV alone clusters
  // short keys, and the final mix64 spreads them over the whole circle.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h ^ mix64(seed));
}

void HashRing::rebuild(std::span<const ProcessId> members, std::uint64_t seed,
                       std::uint32_t vids_per_member) {
  circle_.clear();
  std::vector<ProcessId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  member_count_ = sorted.size();
  for (const ProcessId m : sorted) {
    for (std::uint32_t v = 0; v < vids_per_member; ++v) {
      // Point = mix(seed, member, vid index). On the vanishingly rare vid
      // collision the smaller ProcessId wins (insert keeps the first entry
      // of the sorted walk), which is still deterministic.
      const std::uint64_t vid =
          mix64(mix64(seed ^ (std::uint64_t{m.value} << 32)) + v);
      circle_.emplace(vid, m);
    }
  }
}

ProcessId HashRing::successor(std::uint64_t point) const {
  if (circle_.empty()) return ProcessId{};
  auto it = circle_.lower_bound(point);
  if (it == circle_.end()) it = circle_.begin();  // wrap
  return it->second;
}

std::vector<ProcessId> HashRing::successors(std::uint64_t point,
                                            std::size_t n) const {
  std::vector<ProcessId> out;
  if (circle_.empty() || n == 0) return out;
  auto it = circle_.lower_bound(point);
  for (std::size_t steps = 0; steps < circle_.size() && out.size() < n; ++steps) {
    if (it == circle_.end()) it = circle_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

}  // namespace evs::shard
