// Shard state transfer + anti-entropy: how a re-merged replica catches up.
//
// Extended virtual synchrony deliberately stops at delivery semantics: a
// replica that was partitioned away while the primary component kept
// ordering writes re-merges knowing exactly WHICH configuration changes it
// missed (the transitional configuration tells it so), but EVS does not —
// and cannot — replay the messages ordered in rings it never joined. The
// application must reconcile state. This module is that reconciliation for
// the sharded KV service (apps/kv_sharded.*).
//
// Everything rides the shard's own EVS ring as SAFE messages, totally
// ordered WITH the writes. That single decision does most of the work:
//
//   * Anchoring. A joiner's TransferRequest is broadcast and delivered at
//     one total-order position that joiner and donor observe identically.
//     The donor builds every chunk synchronously AT that delivery from its
//     current store; the joiner records every key it applies AFTER
//     delivering its own request and skips those keys while reconciling.
//     Writes concurrent with the transfer therefore cannot be lost or
//     reordered: any key the donor's snapshot undersells is exactly a key
//     the joiner has since applied itself.
//
//   * Deterministic arbitration. Donor election, digest beliefs, and the
//     ServeClaim tiebreak are all decided by message DELIVERY, so every
//     replica reaches the same verdict without extra agreement rounds.
//
// Catch-up lifecycle (per shard, per replica):
//
//   out of primary ──(regular config with assigned majority)──▶ catching_up
//       catching_up: writes still accepted (they are totally ordered and
//       applied like anyone else's); reads refused with Errc::catching_up
//       (get_stale() opts back in).
//   catching_up ──▶ serving, by the first of:
//       (a) chunks: a donor ships the differing digest buckets, CRC-framed
//           and size-bounded; the joiner reconciles idempotently;
//       (b) rule A: a serving peer's digest content-equals mine;
//       (c) rule B: every assigned replica in the configuration is known,
//           none serving, all content-equal (cluster birth);
//       (d) ServeClaim: nobody can serve (e.g. a majority crash wiped
//           stores) — the best-progressed replica claims, first claim
//           delivered after the config change wins everywhere.
//
// Robustness: every attempt carries a deadline; failures (torn chunk
// stream, CRC reject, donor silence, reconfiguration mid-transfer) abort
// the attempt and retry with exponential backoff, never wedge. Anti-entropy
// runs at a low duty cycle while serving: the lowest-id serving replica
// announces its digest; a serving peer that disagrees asks for the
// differing buckets (the authority filters buckets its own in-flight writes
// made spuriously stale) and repairs silent divergence in place.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evs/node.hpp"
#include "obs/metrics.hpp"
#include "shard/digest.hpp"
#include "shard/kv_store.hpp"
#include "util/types.hpp"

namespace evs::shard {

// --- wire formats (first byte = op; all integers little-endian) -----------

enum class TransferOp : std::uint8_t {
  DigestAnnounce = 0x10,   ///< serving replica's digest (config install +
                           ///< periodic anti-entropy rounds)
  TransferRequest = 0x11,  ///< catching-up replica asks for a delta
  TransferChunk = 0x12,    ///< donor -> joiner bucket data (CRC trailer)
  RepairRequest = 0x13,    ///< anti-entropy: serving peer asks authority
  ServeClaim = 0x14,       ///< nobody serves: best replica claims the role
};
inline constexpr std::uint8_t kTransferOpLast = 0x14;

struct DigestAnnounceMsg {
  ProcessId sender;
  std::uint64_t round{0};
  StoreDigest digest;
};

/// Shape shared by TransferRequest and ServeClaim.
struct TransferRequestMsg {
  ProcessId sender;
  std::uint64_t session{0};
  StoreDigest digest;
};

struct ChunkEntry {
  std::string key;
  std::string value;
};

/// One digest bucket's contents (possibly one part of them: an oversized
/// bucket spans consecutive parts, `complete` set only on the last).
struct ChunkBucket {
  std::uint32_t bucket{0};
  bool complete{true};
  std::vector<ChunkEntry> entries;
};

inline constexpr std::uint8_t kChunkFlagRepair = 0x01;

/// chunk `index` of `count` for (joiner, session). A count of 1 with no
/// buckets is the "nothing to transfer" completion signal. The encoded
/// payload ends in a CRC-32 trailer over everything before it — transfers
/// move application state, so a corrupted chunk that slipped past (or was
/// re-sealed over) the frame CRC must still be caught before it reaches a
/// store.
struct TransferChunkMsg {
  ProcessId donor;
  ProcessId joiner;
  std::uint64_t session{0};
  std::uint8_t flags{0};
  std::uint32_t index{0};
  std::uint32_t count{1};
  std::vector<ChunkBucket> buckets;
};

struct RepairRequestMsg {
  ProcessId requester;
  ProcessId authority;
  std::uint64_t session{0};
  std::uint64_t round{0};  ///< the announce round being answered
  std::vector<std::uint32_t> buckets;
};

std::vector<std::uint8_t> encode_announce(const DigestAnnounceMsg& m);
std::vector<std::uint8_t> encode_request(const TransferRequestMsg& m,
                                         TransferOp op);
std::vector<std::uint8_t> encode_chunk(const TransferChunkMsg& m);
std::vector<std::uint8_t> encode_repair_request(const RepairRequestMsg& m);

std::optional<DigestAnnounceMsg> decode_announce(
    std::span<const std::uint8_t> p);
std::optional<TransferRequestMsg> decode_request(
    std::span<const std::uint8_t> p);
/// Structural decode only; run chunk_crc_ok first.
std::optional<TransferChunkMsg> decode_chunk(std::span<const std::uint8_t> p);
std::optional<RepairRequestMsg> decode_repair_request(
    std::span<const std::uint8_t> p);

/// Validate a TransferChunk payload's CRC-32 trailer.
bool chunk_crc_ok(std::span<const std::uint8_t> p);

// --- engine ----------------------------------------------------------------

struct TransferConfig {
  /// Digest granularity: more buckets = finer deltas, bigger digests.
  std::uint32_t digest_buckets{1024};
  /// Soft byte ceiling per TransferChunk payload (an oversized single entry
  /// still travels alone; the node's max_payload_bytes is the hard cap).
  std::size_t max_chunk_bytes{24u * 1024};
  /// Engine timer period (deadlines, backoff, anti-entropy cadence).
  SimTime tick_interval_us{10'000};
  /// Joiner: deadline for one request attempt before it retries.
  SimTime request_timeout_us{150'000};
  /// Joiner: exponential backoff between attempts is capped here.
  SimTime backoff_cap_us{2'000'000};
  /// Anti-entropy announce period for the authority. 0 disables the
  /// background exchange (install-time announces still happen — they feed
  /// donor election and rule-A clearing).
  SimTime antientropy_interval_us{500'000};
  /// Requester-side deadline for an anti-entropy repair session.
  SimTime repair_timeout_us{300'000};
  /// Donor: resend attempts for a backpressured chunk batch.
  int donor_max_attempts{16};
};

/// Instrument handles for the transfer/anti-entropy subsystem, cached once
/// per agent (the registry owns the values; see obs/metrics.hpp).
struct TransferMet {
  explicit TransferMet(obs::MetricsRegistry& r);
  obs::Counter& sessions;           ///< kv.transfer.sessions (requests sent)
  obs::Counter& completed;          ///< kv.transfer.completed (catch-ups)
  obs::Counter& aborted;            ///< kv.transfer.aborted (failed attempts)
  obs::Counter& retries;            ///< kv.transfer.retries
  obs::Counter& chunks_sent;        ///< kv.transfer.chunks_sent
  obs::Counter& chunks_applied;     ///< kv.transfer.chunks_applied
  obs::Counter& bytes_sent;         ///< kv.transfer.bytes_sent
  obs::Counter& bytes_applied;      ///< kv.transfer.bytes_applied
  obs::Counter& chunk_crc_rejects;  ///< kv.transfer.chunk_crc_rejects
  obs::Counter& claims;             ///< kv.transfer.claims (claims sent)
  obs::Counter& reads_catching_up;  ///< kv.reads_catching_up (reads refused)
  obs::Counter& stale_reads;        ///< kv.stale_reads (get_stale served)
  obs::Counter& antientropy_rounds;   ///< kv.antientropy_rounds
  obs::Counter& antientropy_repairs;  ///< kv.antientropy_repairs (buckets fixed)
  obs::Histogram& catch_up_us;      ///< kv.transfer.catch_up_us
};

/// Per-(replica, shard) state machine. Owned by apps::KvShardedNode, one
/// per locally replicated shard; every method runs under the agent's lock.
/// The engine never touches the node outside the Ctx handed to it, and all
/// its sends go through EvsNode::send_batch on the shard's own ring.
class TransferEngine {
 public:
  /// Call-scoped environment: the agent owns all of these; the engine
  /// borrows them for one call.
  struct Ctx {
    KvStore& store;
    EvsNode& node;
    SimTime now;
    std::span<const ProcessId> assigned;  ///< router's replica group
    TransferMet& met;
  };

  TransferEngine(ProcessId self, TransferConfig cfg);

  /// A REGULAR configuration installed on the shard ring (the agent filters
  /// transitional installs out). Re-derives in-primary, resets beliefs and
  /// in-flight sessions, and — inside this call, so the messages land ahead
  /// of any later submission in the new ring's order — sends either a
  /// TransferRequest (catching up) or a DigestAnnounce (serving).
  void on_regular_config(const Configuration& config, Ctx ctx);

  /// Offer a SAFE-delivered payload whose first byte is in the transfer op
  /// range. True when consumed (any structurally valid transfer message,
  /// and any chunk failing its CRC trailer — that is a counted transfer
  /// event, not a decode failure). False means malformed: the agent counts
  /// it with the store's other rejects.
  bool handle_payload(std::span<const std::uint8_t> payload, Ctx ctx);

  /// A KV op for `key` was applied from the ring's total order. Feeds the
  /// anchor skip-sets and the digest cache invalidation. O(log n).
  void on_kv_applied(std::string_view key);

  /// Periodic driver: attempt deadlines, backoff resends, ServeClaim
  /// escalation, donor retries, anti-entropy announce rounds.
  void tick(Ctx ctx);

  /// The process crashed: all volatile transfer state is gone (the agent
  /// clears the store alongside).
  void reset_for_crash();

  bool catching_up() const { return catching_up_; }
  bool in_primary() const { return in_primary_; }
  /// Serving = in primary and caught up: the read gate is open.
  bool serving() const { return in_primary_ && !catching_up_; }

  /// The store was mutated behind the engine's back (test-injected
  /// corruption): drop the cached digest so the next round recomputes.
  void invalidate_digest() { digest_dirty_ = true; }

 private:
  struct Peer {
    bool serving{false};
    bool have_digest{false};
    StoreDigest digest;
  };

  /// One side of a chunk stream being received (join catch-up or
  /// anti-entropy repair share the shape).
  struct Stream {
    bool donor_locked{false};
    ProcessId donor{};
    std::uint32_t next_index{0};
    std::uint32_t count{0};
    std::optional<std::uint32_t> partial_bucket;
    std::vector<ChunkEntry> partial_entries;
  };

  struct Join {
    std::uint64_t session{0};
    bool attempt_open{false};  ///< request sent, awaiting chunks
    bool anchored{false};      ///< own request delivered; `modified` active
    std::set<std::string, std::less<>> modified;
    Stream stream;
    SimTime deadline{0};
    SimTime next_attempt_at{0};
    std::uint32_t retries{0};
    std::uint32_t backoff_level{0};
    SimTime started_at{0};  ///< first attempt of this catching-up episode
  };

  struct DonorResend {
    ProcessId joiner{};
    std::uint64_t session{0};
    std::vector<std::vector<std::uint8_t>> chunks;
    SimTime retry_at{0};
    int attempts{0};
  };

  struct Announce {
    bool awaiting_self{false};  ///< announce queued, own delivery pending
    std::uint64_t round{0};
    /// Buckets we modified between queueing the announce and delivering it
    /// — exactly the set a receiver's comparison flags spuriously, since the
    /// receiver compares its post-delivery store with our pre-queue digest.
    std::set<std::uint32_t> modified_buckets;
    std::set<std::uint32_t> spurious;  ///< frozen at own announce delivery
    std::uint64_t spurious_round{0};
    SimTime next_at{0};
  };

  struct Repair {
    bool active{false};
    std::uint64_t session{0};
    ProcessId authority{};
    bool anchored{false};
    std::set<std::string, std::less<>> modified;
    Stream stream;
    SimTime deadline{0};
  };

  enum class ChunkVerdict {
    ignored,     ///< rival donor or stale stream; no state touched
    progressed,  ///< applied; more chunks expected
    violation,   ///< torn stream (index gap, part mismatch); caller aborts
    completed,   ///< final chunk applied cleanly
  };

  // --- delivery handlers ---
  void handle_announce(const DigestAnnounceMsg& m, Ctx ctx);
  void handle_request(const TransferRequestMsg& m, Ctx ctx);
  void handle_claim(const TransferRequestMsg& m, Ctx ctx);
  void handle_chunk(const TransferChunkMsg& m, std::size_t payload_bytes,
                    Ctx ctx);
  void handle_repair_request(const RepairRequestMsg& m, Ctx ctx);
  /// Route one chunk into a receive stream (join catch-up and anti-entropy
  /// repair share the machinery; `skip` is the stream's anchored skip-set).
  ChunkVerdict accept_chunk(Stream& s,
                            const std::set<std::string, std::less<>>& skip,
                            const TransferChunkMsg& m, bool count_repairs,
                            Ctx ctx);

  // --- joiner ---
  void start_catching_up(Ctx ctx);
  void start_attempt(Ctx ctx);
  /// Close the open attempt as failed. With `backoff`, schedules the next
  /// attempt exponentially later; without, the next tick retries at once.
  void abort_attempt(bool backoff, Ctx ctx);
  void complete_catch_up(Ctx ctx);
  /// Rules A/B: can `catching_up_` clear without a chunk stream? Evaluated
  /// at digest-carrying deliveries (a total-order position, so every
  /// replica that evaluates it sees the same beliefs).
  void rules_check(Ctx ctx);
  bool should_claim(Ctx ctx) const;

  // --- donor / authority ---
  bool is_donor(Ctx ctx) const;
  void respond_to_request(const TransferRequestMsg& m, Ctx ctx);
  void send_chunks(ProcessId joiner, std::uint64_t session, bool repair,
                   const std::vector<std::uint32_t>& buckets, Ctx ctx);
  void announce(Ctx ctx);

  // --- helpers ---
  const StoreDigest& my_digest(Ctx ctx);
  void note_digest(ProcessId p, const StoreDigest& d, bool serving);
  std::size_t chunk_budget(Ctx ctx) const;
  /// Reconcile one complete bucket onto the store, skipping `skip` keys
  /// (applied since the anchor: both sides already hold their post-write
  /// values). True when the store changed.
  bool reconcile_bucket(std::uint32_t bucket,
                        const std::vector<ChunkEntry>& entries,
                        const std::set<std::string, std::less<>>& skip,
                        Ctx ctx);

  ProcessId self_;
  TransferConfig cfg_;
  std::vector<ProcessId> members_;  ///< current regular config's members

  bool in_primary_{false};
  bool was_out_{true};  ///< not in primary since attach/crash/partition
  bool catching_up_{false};
  bool claim_resolved_{false};  ///< a ServeClaim already won in this config
  std::uint64_t session_counter_{0};
  std::uint64_t ann_round_{0};

  std::map<ProcessId, Peer> peers_;  ///< beliefs; reset every regular config

  bool digest_dirty_{true};
  StoreDigest digest_cache_;

  Join join_;
  std::vector<DonorResend> donor_resends_;
  Announce ann_;
  Repair repair_;
};

}  // namespace evs::shard
