#include "shard/digest.hpp"

namespace evs::shard {

namespace wiredet {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool get_u32(std::span<const std::uint8_t> b, std::size_t& off,
             std::uint32_t& v) {
  if (b.size() < off + 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[off + i]) << (8 * i);
  }
  off += 4;
  return true;
}

bool get_u64(std::span<const std::uint8_t> b, std::size_t& off,
             std::uint64_t& v) {
  if (b.size() < off + 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  }
  off += 8;
  return true;
}

}  // namespace wiredet

std::uint32_t bucket_of(std::string_view key, std::uint32_t nbuckets) {
  // FNV-1a over the key alone (entry_hash covers key+value; the bucket must
  // not move when a value changes).
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % (nbuckets == 0 ? 1 : nbuckets));
}

StoreDigest compute_digest(const KvStore& store, std::uint32_t nbuckets) {
  if (nbuckets == 0) nbuckets = 1;
  StoreDigest d;
  d.applied = store.stats().applied;
  d.fingerprint = store.fingerprint();
  d.buckets.assign(nbuckets, 0);
  for (const auto& [k, v] : store.contents()) {
    d.buckets[bucket_of(k, nbuckets)] += entry_hash(k, v);
  }
  return d;
}

bool same_content(const StoreDigest& a, const StoreDigest& b) {
  return a.fingerprint == b.fingerprint && a.buckets == b.buckets;
}

std::vector<std::uint32_t> diff_buckets(const StoreDigest& mine,
                                        const StoreDigest& theirs) {
  std::vector<std::uint32_t> out;
  if (mine.buckets.size() != theirs.buckets.size()) return out;
  for (std::uint32_t i = 0; i < mine.buckets.size(); ++i) {
    if (mine.buckets[i] != theirs.buckets[i]) out.push_back(i);
  }
  return out;
}

void encode_digest(std::vector<std::uint8_t>& out, const StoreDigest& d) {
  wiredet::put_u64(out, d.applied);
  wiredet::put_u64(out, d.fingerprint);
  wiredet::put_u32(out, static_cast<std::uint32_t>(d.buckets.size()));
  for (const std::uint64_t b : d.buckets) wiredet::put_u64(out, b);
}

std::optional<StoreDigest> decode_digest(std::span<const std::uint8_t> b,
                                         std::size_t& off) {
  StoreDigest d;
  std::uint32_t n = 0;
  if (!wiredet::get_u64(b, off, d.applied)) return std::nullopt;
  if (!wiredet::get_u64(b, off, d.fingerprint)) return std::nullopt;
  if (!wiredet::get_u32(b, off, n)) return std::nullopt;
  if (n == 0 || n > kMaxDigestBuckets) return std::nullopt;
  if (b.size() - off < static_cast<std::size_t>(n) * 8) return std::nullopt;
  d.buckets.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    (void)wiredet::get_u64(b, off, d.buckets[i]);
  }
  return d;
}

}  // namespace evs::shard
