#include "shard/router.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace evs::shard {

namespace {

std::uint64_t shard_anchor(std::uint64_t seed, ShardId shard) {
  // A distinct derivation domain from member vids: xor with a tag so shard
  // anchors and member points never collide by construction of the inputs.
  return mix64(mix64(seed ^ 0x5ead0a4dull) + shard);
}

}  // namespace

ShardRouter::ShardRouter(Options options) : options_(options) {
  EVS_ASSERT_MSG(options_.num_shards >= 1, "router needs at least one shard");
  EVS_ASSERT_MSG(options_.replication >= 1, "router needs replication >= 1");
  groups_.resize(options_.num_shards);
  key_anchors_.reserve(std::size_t{options_.num_shards} * kAnchorsPerShard);
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    const std::uint64_t base = shard_anchor(options_.seed, s);
    for (std::uint32_t k = 0; k < kAnchorsPerShard; ++k) {
      key_anchors_.emplace_back(mix64(base + k * 0x9e3779b97f4a7c15ull), s);
    }
  }
  std::sort(key_anchors_.begin(), key_anchors_.end());
}

bool ShardRouter::update_members(std::span<const ProcessId> members) {
  members_.rebuild(members, options_.seed, options_.vids_per_member);
  bool changed = false;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    auto group = members_.successors(anchor(s), options_.replication);
    if (group != groups_[s]) {
      groups_[s] = std::move(group);
      changed = true;
    }
  }
  return changed;
}

ShardId ShardRouter::shard_of_key(std::string_view key) const {
  if (options_.num_shards == 1) return 0;
  // Clockwise successor in the static anchor table (wrapping).
  const std::uint64_t point = hash_bytes(options_.seed, key);
  auto it = std::lower_bound(
      key_anchors_.begin(), key_anchors_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == key_anchors_.end()) it = key_anchors_.begin();
  return it->second;
}

const std::vector<ProcessId>& ShardRouter::replicas(ShardId shard) const {
  EVS_ASSERT_MSG(shard < groups_.size(), "shard id out of range");
  return groups_[shard];
}

bool ShardRouter::is_replica(ShardId shard, ProcessId p) const {
  const auto& g = replicas(shard);
  return std::find(g.begin(), g.end(), p) != g.end();
}

std::vector<ShardId> ShardRouter::shards_of(ProcessId p) const {
  std::vector<ShardId> out;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    if (is_replica(s, p)) out.push_back(s);
  }
  return out;
}

std::uint64_t ShardRouter::assignment_fingerprint() const {
  std::uint64_t h = mix64(options_.seed);
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    for (const ProcessId p : groups_[s]) {
      h = mix64(h ^ (std::uint64_t{s} << 32) ^ p.value);
    }
  }
  return h;
}

std::uint64_t ShardRouter::anchor(ShardId shard) const {
  return shard_anchor(options_.seed, shard);
}

}  // namespace evs::shard
